// UdpTransport tests (DESIGN.md S7): a two-node loopback smoke run, the
// probe round trip over a raw socket, and the malformed-datagram storm that
// exercises the §6 trust boundary — a bound UDP port accepts bytes from
// anyone, so a node must survive arbitrary garbage without crashing or
// corrupting its estimate.
//
// Environments without loopback sockets (restricted sandboxes) make the
// UdpTransport constructor throw; every test here skips in that case
// rather than failing.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/errors.h"
#include "common/interval.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/optimal_csa.h"
#include "core/spec.h"
#include "runtime/datagram.h"
#include "runtime/node.h"
#include "runtime/time_source.h"
#include "runtime/udp_transport.h"
#include "test_util.h"

namespace driftsync::runtime {
namespace {

using driftsync::testing::contains_truth;
using driftsync::testing::loss_tolerant_csa;
using driftsync::testing::two_node_spec;

constexpr const char* kHost = "127.0.0.1";

/// Binds an ephemeral loopback port, or null if sockets are unavailable.
std::unique_ptr<UdpTransport> try_bind() {
  try {
    return std::make_unique<UdpTransport>(kHost, 0);
  } catch (const std::runtime_error&) {
    return nullptr;
  }
}

#define REQUIRE_SOCKETS(transport)                                     \
  if ((transport) == nullptr) {                                        \
    GTEST_SKIP() << "loopback UDP sockets unavailable in this "        \
                    "environment";                                     \
  }

/// Real sockets need a slower fate timeout than the hub-based tests.
NodeConfig node_config(ProcId self, const SystemSpec& spec) {
  return driftsync::testing::node_config(self, spec, /*poll_period=*/0.04,
                                         /*fate_timeout=*/0.3,
                                         /*skip_retry=*/0.1);
}

TEST(UdpTransport, RawDatagramRoundTrip) {
  auto a = try_bind();
  REQUIRE_SOCKETS(a);
  auto b = try_bind();
  REQUIRE_SOCKETS(b);
  a->add_peer(1, kHost, b->local_port());
  b->add_peer(0, kHost, a->local_port());

  std::mutex mu;
  std::vector<std::uint8_t> got;
  b->start([&](std::span<const std::uint8_t> bytes) {
    const std::lock_guard<std::mutex> lock(mu);
    got.assign(bytes.begin(), bytes.end());
  });
  a->start([](std::span<const std::uint8_t>) {});

  const std::vector<std::uint8_t> sent{0x11, 0x22, 0x33};
  a->send(1, sent);
  bool delivered = false;
  for (int spins = 0; spins < 400 && !delivered; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const std::lock_guard<std::mutex> lock(mu);
    delivered = got == sent;
  }
  EXPECT_TRUE(delivered);
  EXPECT_EQ(a->send_drops(), 0u);
  a->stop();
  b->stop();
}

TEST(UdpTransport, SendToUnknownPeerCountsAsDrop) {
  auto a = try_bind();
  REQUIRE_SOCKETS(a);
  a->start([](std::span<const std::uint8_t>) {});
  a->send(7, {1, 2, 3});
  EXPECT_EQ(a->send_drops(), 1u);
  // The dropped datagram must not linger in any backlog queue.
  EXPECT_EQ(a->backlog_depth(), 0u);
  a->stop();
}

/// Backlog accounting under a flood: loopback sends rarely block, so the
/// backlog should drain to zero once the flood ends, with every datagram
/// accounted for as sent or dropped (never leaked in a queue).
TEST(UdpTransport, FloodBacklogReturnsToZero) {
  auto a = try_bind();
  REQUIRE_SOCKETS(a);
  auto b = try_bind();
  REQUIRE_SOCKETS(b);
  a->add_peer(1, kHost, b->local_port());
  b->start([](std::span<const std::uint8_t>) {});
  a->start([](std::span<const std::uint8_t>) {});

  const std::vector<std::uint8_t> payload(512, 0xab);
  for (int i = 0; i < 2000; ++i) a->send(1, payload);
  bool drained = false;
  for (int spins = 0; spins < 400 && !drained; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    drained = a->backlog_depth() == 0;
  }
  EXPECT_TRUE(drained);
  a->stop();
  b->stop();
}

/// Two driftsyncd-style nodes on loopback ephemeral ports: the non-source
/// node must converge to a correct, narrow estimate of real time.
TEST(UdpNode, TwoNodeLoopbackSmoke) {
  auto t0 = try_bind();
  REQUIRE_SOCKETS(t0);
  auto t1 = try_bind();
  REQUIRE_SOCKETS(t1);
  t0->add_peer(1, kHost, t1->local_port());
  t1->add_peer(0, kHost, t0->local_port());

  const SystemSpec spec = two_node_spec();
  Node n0(node_config(0, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(0.0, 1.0), std::move(t0));
  Node n1(node_config(1, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(25.0, 1.0 + 2e-4),
          std::move(t1));
  n0.start();
  n1.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));

  EXPECT_TRUE(contains_truth(n0));
  EXPECT_TRUE(contains_truth(n1));
  EXPECT_EQ(n0.estimate().width(), 0.0);
  // Loopback latency is microseconds; anything near the 50 ms spec bound
  // would mean the protocol never exchanged fresh information.
  EXPECT_LT(n1.estimate().width(), 0.05);
  const NodeStats s1 = n1.stats();
  EXPECT_GT(s1.dgrams_in, 0u);
  EXPECT_GT(s1.deliveries_confirmed, 0u);
  n1.stop();
  n0.stop();
}

/// The trust-boundary storm: blast a serving node with random garbage and
/// near-miss datagrams.  Every byte string must resolve to a counted drop
/// (WireError) or a counted ignore — never a crash — and the estimate must
/// stay correct.  Run under ASan/UBSan this is the §6 acceptance test.
TEST(UdpNode, MalformedDatagramStormLeavesNodeServing) {
  auto t0 = try_bind();
  REQUIRE_SOCKETS(t0);
  auto t1 = try_bind();
  REQUIRE_SOCKETS(t1);
  const std::uint16_t victim_port = t1->local_port();
  t0->add_peer(1, kHost, victim_port);
  t1->add_peer(0, kHost, t0->local_port());

  const SystemSpec spec = two_node_spec();
  Node n0(node_config(0, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(0.0, 1.0), std::move(t0));
  Node n1(node_config(1, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(-12.0, 1.0 - 2e-4),
          std::move(t1));
  n0.start();
  n1.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  const int attacker = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(attacker, 0);
  sockaddr_in victim{};
  victim.sin_family = AF_INET;
  victim.sin_port = htons(victim_port);
  ASSERT_EQ(inet_pton(AF_INET, kHost, &victim.sin_addr), 1);

  Rng rng(77);
  std::uint64_t storm_sent = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk;
    if (rng.flip(0.3)) {
      // Near-miss: valid header bytes, garbage body — exercises the deep
      // decode paths (metrics types included), not just the magic check.
      junk = {'D', 'S', 1, static_cast<std::uint8_t>(rng.uniform_index(7))};
    }
    const std::size_t len = rng.uniform_index(96);
    for (std::size_t j = 0; j < len; ++j) {
      junk.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
    if (::sendto(attacker, junk.data(), junk.size(), 0,
                 reinterpret_cast<const sockaddr*>(&victim),
                 sizeof(victim)) >= 0) {
      ++storm_sent;
    }
    if (i % 50 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ::close(attacker);
  ASSERT_GT(storm_sent, 0u);

  // Let the storm drain and the protocol keep running through it.
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  const NodeStats s1 = n1.stats();
  EXPECT_GT(s1.decode_drops, 0u);  // The storm was actually seen.
  EXPECT_TRUE(contains_truth(n0));
  EXPECT_TRUE(contains_truth(n1));
  EXPECT_LT(n1.estimate().width(), 0.05);
  n1.stop();
  n0.stop();
}

/// driftsync_probe's round trip, done by hand: an unconfigured client
/// sends ProbeReq and the node replies to the datagram's source address
/// (the kReplyPeer path).
TEST(UdpNode, ProbeRoundTrip) {
  auto t1 = try_bind();
  REQUIRE_SOCKETS(t1);
  const std::uint16_t node_port = t1->local_port();

  const SystemSpec spec = two_node_spec();
  Node n1(node_config(1, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(4.0, 1.0), std::move(t1));
  n1.start();

  const int client = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(node_port);
  ASSERT_EQ(inet_pton(AF_INET, kHost, &addr.sin_addr), 1);

  const std::uint64_t nonce = 0xfeedface12345678ULL;
  bool replied = false;
  for (int attempt = 0; attempt < 5 && !replied; ++attempt) {
    const auto req = encode_datagram(ProbeReq{nonce});
    ASSERT_GE(::sendto(client, req.data(), req.size(), 0,
                       reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)),
              0);
    pollfd pfd{client, POLLIN, 0};
    if (::poll(&pfd, 1, 500) <= 0) continue;
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    const Datagram dgram = decode_datagram(
        std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    ASSERT_TRUE(std::holds_alternative<ProbeResp>(dgram));
    const auto& resp = std::get<ProbeResp>(dgram);
    EXPECT_EQ(resp.nonce, nonce);
    EXPECT_EQ(resp.from, 1u);
    EXPECT_LE(resp.lo, resp.hi);
    EXPECT_FALSE(resp.stats_json.empty());
    EXPECT_NE(resp.stats_json.find("\"decode_drops\""), std::string::npos);
    replied = true;
  }
  ::close(client);
  EXPECT_TRUE(replied);
  n1.stop();
}

/// driftsync_probe --metrics/--trace, done by hand: a MetricsReq from an
/// unconfigured client gets Prometheus text and (when asked) a Chrome-trace
/// snapshot back over the kReplyPeer path.
TEST(UdpNode, MetricsRoundTrip) {
  auto t1 = try_bind();
  REQUIRE_SOCKETS(t1);
  const std::uint16_t node_port = t1->local_port();

  Tracer tracer(256);
  t1->set_tracer(&tracer, 1);
  const SystemSpec spec = two_node_spec();
  NodeConfig cfg = node_config(1, spec);
  cfg.tracer = &tracer;
  Node n1(std::move(cfg), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(4.0, 1.0), std::move(t1));
  n1.start();

  const int client = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(node_port);
  ASSERT_EQ(inet_pton(AF_INET, kHost, &addr.sin_addr), 1);

  const std::uint64_t nonce = 0xabad1deacafeULL;
  bool replied = false;
  for (int attempt = 0; attempt < 5 && !replied; ++attempt) {
    const auto req = encode_datagram(MetricsReq{nonce, 64});
    ASSERT_GE(::sendto(client, req.data(), req.size(), 0,
                       reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)),
              0);
    pollfd pfd{client, POLLIN, 0};
    if (::poll(&pfd, 1, 500) <= 0) continue;
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    const Datagram dgram = decode_datagram(
        std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    ASSERT_TRUE(std::holds_alternative<MetricsResp>(dgram));
    const auto& resp = std::get<MetricsResp>(dgram);
    EXPECT_EQ(resp.nonce, nonce);
    EXPECT_EQ(resp.from, 1u);
    // Prometheus text exposition: one metric per line, node label attached.
    EXPECT_NE(resp.metrics.find("driftsync_dgrams_in{node=\"1\"} "),
              std::string::npos);
    EXPECT_NE(resp.metrics.find("driftsync_width_seconds_bucket{node=\"1\","
                                "le=\"+Inf\"} "),
              std::string::npos);
    EXPECT_NE(resp.metrics.find("driftsync_trace_recorded{node=\"1\"} "),
              std::string::npos);
    // The trace snapshot is Chrome-trace shaped (we asked for 64 events).
    EXPECT_EQ(resp.trace_json.rfind("{\"traceEvents\":[", 0), 0u);
    replied = true;
  }
  ::close(client);
  EXPECT_TRUE(replied);
  n1.stop();
}

}  // namespace
}  // namespace driftsync::runtime
