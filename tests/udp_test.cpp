// UdpTransport tests (DESIGN.md S7): a two-node loopback smoke run, the
// probe round trip over a raw socket, and the malformed-datagram storm that
// exercises the §6 trust boundary — a bound UDP port accepts bytes from
// anyone, so a node must survive arbitrary garbage without crashing or
// corrupting its estimate.
//
// Environments without loopback sockets (restricted sandboxes) make the
// UdpTransport constructor throw; every test here skips in that case
// rather than failing.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/errors.h"
#include "common/interval.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/optimal_csa.h"
#include "core/spec.h"
#include "runtime/datagram.h"
#include "runtime/node.h"
#include "runtime/time_source.h"
#include "runtime/udp_transport.h"
#include "test_util.h"

namespace driftsync::runtime {
namespace {

using driftsync::testing::contains_truth;
using driftsync::testing::loss_tolerant_csa;
using driftsync::testing::two_node_spec;

constexpr const char* kHost = "127.0.0.1";

/// Binds an ephemeral loopback port, or null if sockets are unavailable.
std::unique_ptr<UdpTransport> try_bind() {
  try {
    return std::make_unique<UdpTransport>(kHost, 0);
  } catch (const std::runtime_error&) {
    return nullptr;
  }
}

#define REQUIRE_SOCKETS(transport)                                     \
  if ((transport) == nullptr) {                                        \
    GTEST_SKIP() << "loopback UDP sockets unavailable in this "        \
                    "environment";                                     \
  }

/// Real sockets need a slower fate timeout than the hub-based tests.
NodeConfig node_config(ProcId self, const SystemSpec& spec) {
  return driftsync::testing::node_config(self, spec, /*poll_period=*/0.04,
                                         /*fate_timeout=*/0.3,
                                         /*skip_retry=*/0.1);
}

TEST(UdpTransport, RawDatagramRoundTrip) {
  auto a = try_bind();
  REQUIRE_SOCKETS(a);
  auto b = try_bind();
  REQUIRE_SOCKETS(b);
  a->add_peer(1, kHost, b->local_port());
  b->add_peer(0, kHost, a->local_port());

  std::mutex mu;
  std::vector<std::uint8_t> got;
  b->start([&](std::span<const std::uint8_t> bytes) {
    const std::lock_guard<std::mutex> lock(mu);
    got.assign(bytes.begin(), bytes.end());
  });
  a->start([](std::span<const std::uint8_t>) {});

  const std::vector<std::uint8_t> sent{0x11, 0x22, 0x33};
  a->send(1, sent);
  bool delivered = false;
  for (int spins = 0; spins < 400 && !delivered; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const std::lock_guard<std::mutex> lock(mu);
    delivered = got == sent;
  }
  EXPECT_TRUE(delivered);
  EXPECT_EQ(a->send_drops(), 0u);
  a->stop();
  b->stop();
}

TEST(UdpTransport, SendToUnknownPeerCountsAsDrop) {
  auto a = try_bind();
  REQUIRE_SOCKETS(a);
  a->start([](std::span<const std::uint8_t>) {});
  a->send(7, {1, 2, 3});
  EXPECT_EQ(a->send_drops(), 1u);
  // The dropped datagram must not linger in any backlog queue.
  EXPECT_EQ(a->backlog_depth(), 0u);
  a->stop();
}

/// Backlog accounting under a flood: loopback sends rarely block, so the
/// backlog should drain to zero once the flood ends, with every datagram
/// accounted for as sent or dropped (never leaked in a queue).
TEST(UdpTransport, FloodBacklogReturnsToZero) {
  auto a = try_bind();
  REQUIRE_SOCKETS(a);
  auto b = try_bind();
  REQUIRE_SOCKETS(b);
  a->add_peer(1, kHost, b->local_port());
  b->start([](std::span<const std::uint8_t>) {});
  a->start([](std::span<const std::uint8_t>) {});

  const std::vector<std::uint8_t> payload(512, 0xab);
  for (int i = 0; i < 2000; ++i) a->send(1, payload);
  bool drained = false;
  for (int spins = 0; spins < 400 && !drained; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    drained = a->backlog_depth() == 0;
  }
  EXPECT_TRUE(drained);
  a->stop();
  b->stop();
}

/// Two driftsyncd-style nodes on loopback ephemeral ports: the non-source
/// node must converge to a correct, narrow estimate of real time.
TEST(UdpNode, TwoNodeLoopbackSmoke) {
  auto t0 = try_bind();
  REQUIRE_SOCKETS(t0);
  auto t1 = try_bind();
  REQUIRE_SOCKETS(t1);
  t0->add_peer(1, kHost, t1->local_port());
  t1->add_peer(0, kHost, t0->local_port());

  const SystemSpec spec = two_node_spec();
  Node n0(node_config(0, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(0.0, 1.0), std::move(t0));
  Node n1(node_config(1, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(25.0, 1.0 + 2e-4),
          std::move(t1));
  n0.start();
  n1.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));

  EXPECT_TRUE(contains_truth(n0));
  EXPECT_TRUE(contains_truth(n1));
  EXPECT_EQ(n0.estimate().width(), 0.0);
  // Loopback latency is microseconds; anything near the 50 ms spec bound
  // would mean the protocol never exchanged fresh information.
  EXPECT_LT(n1.estimate().width(), 0.05);
  const NodeStats s1 = n1.stats();
  EXPECT_GT(s1.dgrams_in, 0u);
  EXPECT_GT(s1.deliveries_confirmed, 0u);
  n1.stop();
  n0.stop();
}

/// The trust-boundary storm: blast a serving node with random garbage and
/// near-miss datagrams.  Every byte string must resolve to a counted drop
/// (WireError) or a counted ignore — never a crash — and the estimate must
/// stay correct.  Run under ASan/UBSan this is the §6 acceptance test.
TEST(UdpNode, MalformedDatagramStormLeavesNodeServing) {
  auto t0 = try_bind();
  REQUIRE_SOCKETS(t0);
  auto t1 = try_bind();
  REQUIRE_SOCKETS(t1);
  const std::uint16_t victim_port = t1->local_port();
  t0->add_peer(1, kHost, victim_port);
  t1->add_peer(0, kHost, t0->local_port());

  const SystemSpec spec = two_node_spec();
  Node n0(node_config(0, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(0.0, 1.0), std::move(t0));
  Node n1(node_config(1, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(-12.0, 1.0 - 2e-4),
          std::move(t1));
  n0.start();
  n1.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  const int attacker = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(attacker, 0);
  sockaddr_in victim{};
  victim.sin_family = AF_INET;
  victim.sin_port = htons(victim_port);
  ASSERT_EQ(inet_pton(AF_INET, kHost, &victim.sin_addr), 1);

  Rng rng(77);
  std::uint64_t storm_sent = 0;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk;
    if (rng.flip(0.3)) {
      // Near-miss: valid header bytes, garbage body — exercises the deep
      // decode paths (metrics types included), not just the magic check.
      junk = {'D', 'S', 1, static_cast<std::uint8_t>(rng.uniform_index(7))};
    }
    const std::size_t len = rng.uniform_index(96);
    for (std::size_t j = 0; j < len; ++j) {
      junk.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
    if (::sendto(attacker, junk.data(), junk.size(), 0,
                 reinterpret_cast<const sockaddr*>(&victim),
                 sizeof(victim)) >= 0) {
      ++storm_sent;
    }
    if (i % 50 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ::close(attacker);
  ASSERT_GT(storm_sent, 0u);

  // Let the storm drain and the protocol keep running through it.
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  const NodeStats s1 = n1.stats();
  EXPECT_GT(s1.decode_drops, 0u);  // The storm was actually seen.
  EXPECT_TRUE(contains_truth(n0));
  EXPECT_TRUE(contains_truth(n1));
  EXPECT_LT(n1.estimate().width(), 0.05);
  n1.stop();
  n0.stop();
}

/// driftsync_probe's round trip, done by hand: an unconfigured client
/// sends ProbeReq and the node replies to the datagram's source address
/// (the kReplyPeer path).
TEST(UdpNode, ProbeRoundTrip) {
  auto t1 = try_bind();
  REQUIRE_SOCKETS(t1);
  const std::uint16_t node_port = t1->local_port();

  const SystemSpec spec = two_node_spec();
  Node n1(node_config(1, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(4.0, 1.0), std::move(t1));
  n1.start();

  const int client = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(node_port);
  ASSERT_EQ(inet_pton(AF_INET, kHost, &addr.sin_addr), 1);

  const std::uint64_t nonce = 0xfeedface12345678ULL;
  bool replied = false;
  for (int attempt = 0; attempt < 5 && !replied; ++attempt) {
    const auto req = encode_datagram(ProbeReq{nonce});
    ASSERT_GE(::sendto(client, req.data(), req.size(), 0,
                       reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)),
              0);
    pollfd pfd{client, POLLIN, 0};
    if (::poll(&pfd, 1, 500) <= 0) continue;
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    const Datagram dgram = decode_datagram(
        std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    ASSERT_TRUE(std::holds_alternative<ProbeResp>(dgram));
    const auto& resp = std::get<ProbeResp>(dgram);
    EXPECT_EQ(resp.nonce, nonce);
    EXPECT_EQ(resp.from, 1u);
    EXPECT_LE(resp.lo, resp.hi);
    EXPECT_FALSE(resp.stats_json.empty());
    EXPECT_NE(resp.stats_json.find("\"decode_drops\""), std::string::npos);
    // Transport-level health flows through the same stats line.
    EXPECT_NE(resp.stats_json.find("\"transport_recv_drops\""),
              std::string::npos);
    EXPECT_NE(resp.stats_json.find("\"transport_send_drops\""),
              std::string::npos);
    replied = true;
  }
  ::close(client);
  EXPECT_TRUE(replied);
  n1.stop();
}

/// driftsync_probe --metrics/--trace, done by hand: a MetricsReq from an
/// unconfigured client gets Prometheus text and (when asked) a Chrome-trace
/// snapshot back over the kReplyPeer path.
TEST(UdpNode, MetricsRoundTrip) {
  auto t1 = try_bind();
  REQUIRE_SOCKETS(t1);
  const std::uint16_t node_port = t1->local_port();

  Tracer tracer(256);
  t1->set_tracer(&tracer, 1);
  const SystemSpec spec = two_node_spec();
  NodeConfig cfg = node_config(1, spec);
  cfg.tracer = &tracer;
  Node n1(std::move(cfg), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(4.0, 1.0), std::move(t1));
  n1.start();

  const int client = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(node_port);
  ASSERT_EQ(inet_pton(AF_INET, kHost, &addr.sin_addr), 1);

  const std::uint64_t nonce = 0xabad1deacafeULL;
  bool replied = false;
  for (int attempt = 0; attempt < 5 && !replied; ++attempt) {
    const auto req = encode_datagram(MetricsReq{nonce, 64});
    ASSERT_GE(::sendto(client, req.data(), req.size(), 0,
                       reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)),
              0);
    pollfd pfd{client, POLLIN, 0};
    if (::poll(&pfd, 1, 500) <= 0) continue;
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    const Datagram dgram = decode_datagram(
        std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    ASSERT_TRUE(std::holds_alternative<MetricsResp>(dgram));
    const auto& resp = std::get<MetricsResp>(dgram);
    EXPECT_EQ(resp.nonce, nonce);
    EXPECT_EQ(resp.from, 1u);
    // Prometheus text exposition: one metric per line, node label attached.
    EXPECT_NE(resp.metrics.find("driftsync_dgrams_in{node=\"1\"} "),
              std::string::npos);
    EXPECT_NE(resp.metrics.find("driftsync_width_seconds_bucket{node=\"1\","
                                "le=\"+Inf\"} "),
              std::string::npos);
    EXPECT_NE(resp.metrics.find("driftsync_trace_recorded{node=\"1\"} "),
              std::string::npos);
    // The trace snapshot is Chrome-trace shaped (we asked for 64 events).
    EXPECT_EQ(resp.trace_json.rfind("{\"traceEvents\":[", 0), 0u);
    replied = true;
  }
  ::close(client);
  EXPECT_TRUE(replied);
  n1.stop();
}

/// Binds with explicit Options, or null if sockets are unavailable.
std::unique_ptr<UdpTransport> try_bind_opts(UdpTransport::Options opts) {
  try {
    return std::make_unique<UdpTransport>(kHost, 0, opts);
  } catch (const std::runtime_error&) {
    return nullptr;
  }
}

/// Deterministic syscall seam: scripted poll revents, an in-memory inbox
/// for receives, and a send recorder.  Drives the engine's event loop from
/// the test thread via start_manual()/run_once() — no real readiness, no
/// real sends, no timing dependence.
class ScriptedOps final : public UdpIoOps {
 public:
  /// Revents handed out for the socket fd on successive poll calls; once
  /// exhausted, polls report POLLIN while the inbox is non-empty and
  /// POLLOUT whenever it was requested and sends are not blocked.
  std::deque<short> poll_script;
  bool block_sends = false;
  std::deque<std::vector<std::uint8_t>> inbox;
  /// First payload byte of every datagram accepted by send_batch, in
  /// acceptance order — the round-robin test's observable.
  std::vector<std::uint8_t> accepted;

  int poll_io(pollfd* fds, std::size_t nfds, int /*timeout_ms*/) override {
    for (std::size_t i = 1; i < nfds; ++i) fds[i].revents = 0;
    short rev = 0;
    if (!poll_script.empty()) {
      rev = poll_script.front();
      poll_script.pop_front();
    } else {
      if (!inbox.empty()) rev |= POLLIN;
      if (!block_sends && (fds[0].events & POLLOUT)) rev |= POLLOUT;
    }
    fds[0].revents =
        static_cast<short>(rev & (fds[0].events | POLLERR | POLLHUP |
                                  POLLNVAL));
    return fds[0].revents != 0 ? 1 : 0;
  }

  std::size_t recv_batch(int /*fd*/, UdpRecvSlot* slots,
                         std::size_t n) override {
    std::size_t got = 0;
    while (got < n && !inbox.empty()) {
      const std::vector<std::uint8_t>& d = inbox.front();
      UdpRecvSlot& slot = slots[got];
      slot.len = std::min(d.size(), slot.cap);
      slot.truncated = d.size() > slot.cap;
      std::memcpy(slot.data, d.data(), slot.len);
      slot.src = sockaddr_in{};
      inbox.pop_front();
      ++got;
    }
    return got;
  }

  UdpSendResult send_batch(int /*fd*/, const UdpSendItem* items,
                           std::size_t n) override {
    UdpSendResult res;
    if (block_sends) {
      res.blocked = true;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) {
      accepted.push_back(items[i].len > 0 ? items[i].data[0] : 0);
    }
    res.sent = n;
    return res;
  }
};

/// Regression (truncation): oversized datagrams must be dropped and counted
/// in recv_drops, never delivered truncated — a truncated payload decodes
/// as garbage at best, a plausible prefix at worst.  The pre-fix loop
/// passed the silently cut-down bytes straight to the handler.
TEST(UdpTransport, TruncatedDatagramsAreDroppedAndCounted) {
  UdpTransport::Options opts;
  opts.max_datagram = 512;
  opts.recv_batch = 8;
  auto t = try_bind_opts(opts);
  REQUIRE_SOCKETS(t);
  const std::uint16_t port = t->local_port();

  std::mutex mu;
  std::uint64_t small_delivered = 0;
  std::uint64_t oversized_delivered = 0;
  t->start([&](std::span<const std::uint8_t> bytes) {
    const std::lock_guard<std::mutex> lock(mu);
    // 'S' marks the in-bounds payloads, 'B' the oversized ones.
    if (!bytes.empty() && bytes.front() == 'S' && bytes.size() == 100) {
      ++small_delivered;
    } else {
      ++oversized_delivered;
    }
  });

  const int attacker = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(attacker, 0);
  sockaddr_in victim{};
  victim.sin_family = AF_INET;
  victim.sin_port = htons(port);
  ASSERT_EQ(inet_pton(AF_INET, kHost, &victim.sin_addr), 1);
  const std::vector<std::uint8_t> big(1024, 'B');
  const std::vector<std::uint8_t> small(100, 'S');
  constexpr int kPairs = 30;
  for (int i = 0; i < kPairs; ++i) {
    ::sendto(attacker, big.data(), big.size(), 0,
             reinterpret_cast<const sockaddr*>(&victim), sizeof(victim));
    ::sendto(attacker, small.data(), small.size(), 0,
             reinterpret_cast<const sockaddr*>(&victim), sizeof(victim));
    if (i % 8 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::close(attacker);

  bool settled = false;
  for (int spins = 0; spins < 400 && !settled; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const std::lock_guard<std::mutex> lock(mu);
    settled = small_delivered + t->recv_drops() >= 2 * kPairs;
  }
  const std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(oversized_delivered, 0u);  // Never delivered, truncated or not.
  EXPECT_GT(small_delivered, 0u);      // In-bounds traffic kept flowing.
  EXPECT_GT(t->recv_drops(), 0u);      // And the drops were accounted for.
  EXPECT_EQ(t->transport_stats().recv_drops, t->recv_drops());
  t->stop();
}

/// Regression (starvation): under sustained backpressure the flush must
/// round-robin — at most send_batch datagrams per peer per turn, resuming
/// from the cursor — instead of draining one peer's entire backlog before
/// touching the next.  The pre-fix loop emitted AAAAAA BBBBBB CCCCCC; the
/// fixed one interleaves AAB BCC ...
TEST(UdpTransport, BacklogFlushIsRoundRobinAcrossPeers) {
  ScriptedOps ops;
  UdpTransport::Options opts;
  opts.send_batch = 2;
  opts.ops = &ops;
  auto t = try_bind_opts(opts);
  REQUIRE_SOCKETS(t);
  t->add_peer(0, kHost, 9001);
  t->add_peer(1, kHost, 9002);
  t->add_peer(2, kHost, 9003);
  t->start_manual([](std::span<const std::uint8_t>) {});

  // Blocked socket: every send lands in its peer's backlog ring.
  ops.block_sends = true;
  constexpr int kPerPeer = 6;
  for (int i = 0; i < kPerPeer; ++i) {
    for (std::uint8_t peer = 0; peer < 3; ++peer) {
      t->send(peer, std::vector<std::uint8_t>{
                        static_cast<std::uint8_t>('A' + peer)});
    }
  }
  EXPECT_EQ(t->backlog_depth(), 3u * kPerPeer);

  // Unblock and pump until drained; every pump is one poll/flush cycle.
  ops.block_sends = false;
  for (int spins = 0; spins < 64 && t->backlog_depth() > 0; ++spins) {
    ASSERT_TRUE(t->run_once(0, 0));
  }
  EXPECT_EQ(t->backlog_depth(), 0u);
  ASSERT_EQ(ops.accepted.size(), 3u * kPerPeer);
  // Exact expected order: rounds of (A A B B C C) — at most send_batch=2
  // per peer per turn, FIFO within a peer, no peer served twice before all
  // backlogged peers were served once.
  std::vector<std::uint8_t> expected;
  for (int round = 0; round < kPerPeer / 2; ++round) {
    for (char peer : {'A', 'B', 'C'}) {
      expected.push_back(static_cast<std::uint8_t>(peer));
      expected.push_back(static_cast<std::uint8_t>(peer));
    }
  }
  EXPECT_EQ(ops.accepted, expected);
  t->stop();
}

/// Regression (retirement): retiring a peer mid-backpressure must release
/// its backlog ring into counted drops, return its buffers to the pool, and
/// excise it from the round-robin rotation without skipping a survivor.
/// The pre-fix transport had no retirement at all, so the ring entries
/// leaked (backlog_depth never returned to the survivors' share) and the
/// flush loop crashed on the dangling flush_order entry.
TEST(UdpTransport, RetirePeerReleasesBacklogAndRotation) {
  ScriptedOps ops;
  UdpTransport::Options opts;
  opts.send_batch = 2;
  opts.ops = &ops;
  auto t = try_bind_opts(opts);
  REQUIRE_SOCKETS(t);
  t->add_peer(0, kHost, 9001);
  t->add_peer(1, kHost, 9002);
  t->add_peer(2, kHost, 9003);
  t->start_manual([](std::span<const std::uint8_t>) {});

  // Blocked socket: every send lands in its peer's backlog ring.
  ops.block_sends = true;
  constexpr int kPerPeer = 4;
  for (int i = 0; i < kPerPeer; ++i) {
    for (std::uint8_t peer = 0; peer < 3; ++peer) {
      t->send(peer, std::vector<std::uint8_t>{
                        static_cast<std::uint8_t>('A' + peer)});
    }
  }
  ASSERT_EQ(t->backlog_depth(), 3u * kPerPeer);

  // Retire B while its ring is full: the backlog must shrink by exactly
  // B's share, every released datagram counted as a send drop.
  const std::uint64_t drops_before = t->send_drops();
  t->retire_peer(1);
  EXPECT_EQ(t->backlog_depth(), 2u * kPerPeer);
  EXPECT_EQ(t->send_drops(), drops_before + kPerPeer);
  t->retire_peer(1);  // Idempotent: a second leave is a no-op.
  EXPECT_EQ(t->backlog_depth(), 2u * kPerPeer);

  // Post-retirement sends are unknown-peer drops, not resurrections.
  t->send(1, {0x42});
  EXPECT_EQ(t->backlog_depth(), 2u * kPerPeer);
  EXPECT_EQ(t->send_drops(), drops_before + kPerPeer + 1);

  // Unblock and pump: the survivors must drain to zero in clean rotation
  // (A A C C ...) — the cursor neither skips C nor serves a ghost B.
  ops.block_sends = false;
  for (int spins = 0; spins < 64 && t->backlog_depth() > 0; ++spins) {
    ASSERT_TRUE(t->run_once(0, 0));
  }
  EXPECT_EQ(t->backlog_depth(), 0u);
  std::vector<std::uint8_t> expected;
  for (int round = 0; round < kPerPeer / 2; ++round) {
    for (char peer : {'A', 'C'}) {
      expected.push_back(static_cast<std::uint8_t>(peer));
      expected.push_back(static_cast<std::uint8_t>(peer));
    }
  }
  EXPECT_EQ(ops.accepted, expected);

  // Rejoin: a re-admitted peer's traffic flows again.
  t->add_peer(1, kHost, 9002);
  t->send(1, {0x42});
  t->run_once(0, 0);
  ASSERT_FALSE(ops.accepted.empty());
  EXPECT_EQ(ops.accepted.back(), 0x42);
  t->stop();
}

/// Regression (revents): a POLLERR condition (e.g. an ICMP port-unreachable
/// surfaced on the socket) must be consumed and counted, with the loop
/// continuing to serve afterwards.  The pre-fix loop only examined
/// POLLIN/POLLOUT, so a persistent error condition spun poll at 100% CPU.
TEST(UdpTransport, PollErrIsConsumedAndServingContinues) {
  ScriptedOps ops;
  UdpTransport::Options opts;
  opts.ops = &ops;
  auto t = try_bind_opts(opts);
  REQUIRE_SOCKETS(t);
  std::uint64_t delivered = 0;
  t->start_manual(
      [&](std::span<const std::uint8_t>) { ++delivered; });

  ops.inbox.push_back({0x42});
  ops.poll_script.push_back(POLLERR);  // First cycle: only the error.
  EXPECT_TRUE(t->run_once(0, 0));
  EXPECT_EQ(t->socket_errors(), 1u);
  EXPECT_EQ(delivered, 0u);

  EXPECT_TRUE(t->run_once(0, 0));  // Next cycle: the datagram flows.
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(t->transport_stats().socket_errors, 1u);
  t->stop();
}

/// Regression (revents): POLLNVAL means the fd is gone — the shard must
/// stop cleanly (run_once returns false; the threaded loop exits) instead
/// of spinning on a dead descriptor.
TEST(UdpTransport, PollNvalStopsTheShardCleanly) {
  ScriptedOps ops;
  UdpTransport::Options opts;
  opts.ops = &ops;
  auto t = try_bind_opts(opts);
  REQUIRE_SOCKETS(t);
  t->start_manual([](std::span<const std::uint8_t>) {});
  ops.poll_script.push_back(POLLNVAL);
  EXPECT_FALSE(t->run_once(0, 0));
  EXPECT_EQ(t->socket_errors(), 1u);
  t->stop();
}

/// The sharded transport end to end: a 3-node path over loopback UDP with
/// --io-shards=4 per node (SO_REUSEPORT fan-in, cross-shard handoff on the
/// send side) must converge exactly like the single-shard transport.
TEST(UdpNode, ShardedThreeNodeConverges) {
  UdpTransport::Options opts;
  opts.io_shards = 4;
  auto t0 = try_bind_opts(opts);
  REQUIRE_SOCKETS(t0);
  auto t1 = try_bind_opts(opts);
  REQUIRE_SOCKETS(t1);
  auto t2 = try_bind_opts(opts);
  REQUIRE_SOCKETS(t2);
  ASSERT_EQ(t0->num_shards(), 4u);
  t0->add_peer(1, kHost, t1->local_port());
  t1->add_peer(0, kHost, t0->local_port());
  t1->add_peer(2, kHost, t2->local_port());
  t2->add_peer(1, kHost, t1->local_port());

  const SystemSpec spec =
      driftsync::testing::line_spec(3, 5e-4, 0.0, 0.05);
  Node n0(node_config(0, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(0.0, 1.0), std::move(t0));
  Node n1(node_config(1, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(33.0, 1.0 + 3e-4),
          std::move(t1));
  Node n2(node_config(2, spec), loss_tolerant_csa(),
          std::make_unique<ScaledTimeSource>(-7.5, 1.0 - 2e-4),
          std::move(t2));
  n0.start();
  n1.start();
  n2.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));

  EXPECT_TRUE(contains_truth(n0));
  EXPECT_TRUE(contains_truth(n1));
  EXPECT_TRUE(contains_truth(n2));
  EXPECT_LT(n1.estimate().width(), 0.05);
  EXPECT_LT(n2.estimate().width(), 0.10);  // Two hops from the source.
  const NodeStats s1 = n1.stats();
  EXPECT_GT(s1.dgrams_in, 0u);
  EXPECT_GT(s1.transport.recv_datagrams, 0u);
  EXPECT_GT(s1.transport.send_datagrams, 0u);
  n2.stop();
  n1.stop();
  n0.stop();
}

}  // namespace
}  // namespace driftsync::runtime
