// Tests for SyncEngine: the AGDP reduction (Section 3.1/3.2).  Liveness must
// match Definition 3.1 (checked against View), distances must match batch
// Bellman-Ford over the full view (Lemma 3.4), and estimates must equal the
// Section 2.3 formula.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/sync_engine.h"
#include "core/view.h"
#include "graph/shortest_paths.h"
#include "test_util.h"

namespace driftsync {
namespace {

using testing::EventFactory;
using testing::clique_spec;
using testing::line_spec;

// Feeds the same records to a SyncEngine and a View, and cross-checks.
class EngineHarness {
 public:
  EngineHarness(const SystemSpec& spec, ProcId self)
      : spec_(&spec), engine_(spec, self), view_(&spec) {}

  void ingest(const EventRecord& r) {
    engine_.ingest(r);
    view_.add(r);
  }

  void check_liveness() const {
    auto expected = view_.live_points();
    auto actual = engine_.live_points();
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(actual, expected);
  }

  void check_distances() const {
    const View::SyncGraph sg = view_.build_sync_graph();
    for (const EventId p : engine_.live_points()) {
      const auto res = graph::bellman_ford(sg.graph, sg.index_of.at(p));
      ASSERT_FALSE(res.negative_cycle);
      for (const EventId q : engine_.live_points()) {
        const double expected = res.dist[sg.index_of.at(q)];
        const double actual = engine_.distance(p, q);
        EXPECT_TRUE(time_close(expected, actual))
            << "d(" << p.str() << "," << q.str() << ") engine=" << actual
            << " oracle=" << expected;
      }
    }
  }

  SyncEngine& engine() { return engine_; }
  View& view() { return view_; }

 private:
  const SystemSpec* spec_;
  SyncEngine engine_;
  View view_;
};

TEST(SyncEngineTest, EmptyEngineKnowsNothing) {
  const SystemSpec spec = line_spec(2);
  SyncEngine engine(spec, 1);
  EXPECT_FALSE(engine.knows_source());
  EXPECT_EQ(engine.estimate(100.0), Interval::everything());
  EXPECT_EQ(engine.live_count(), 0u);
}

TEST(SyncEngineTest, SourceEstimatesItselfExactly) {
  const SystemSpec spec = line_spec(2);
  SyncEngine engine(spec, 0);
  EventFactory fac(2);
  engine.ingest(fac.send(0, 5.0, 1));
  const Interval est = engine.estimate(7.5);
  EXPECT_TRUE(intervals_close(est, Interval::point(7.5)));
}

TEST(SyncEngineTest, SingleMessageBoundsMatchTheorem) {
  // Source sends at LT 10 over a link with transit in [0.2, 1.0]; receiver
  // clock reads 100 at the receive, drift 1e-3.
  const SystemSpec spec = line_spec(2, 1e-3, 0.2, 1.0);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 100.0, s);
  engine.ingest(s);
  engine.ingest(r);
  // At the receive point: RT in [10 + 0.2, 10 + 1.0].
  const Interval est = engine.estimate(100.0);
  EXPECT_TRUE(intervals_close(est, Interval{10.2, 11.0}));
}

TEST(SyncEngineTest, EstimateWidensBetweenEvents) {
  const SystemSpec spec = line_spec(2, 1e-3, 0.2, 1.0);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 100.0, s);
  engine.ingest(s);
  engine.ingest(r);
  const Interval at_event = engine.estimate(100.0);
  const Interval later = engine.estimate(110.0);
  // Extrapolation: lo advances by dl/(1+rho), hi by dl/(1-rho).
  EXPECT_NEAR(later.lo, at_event.lo + 10.0 / 1.001, 1e-9);
  EXPECT_NEAR(later.hi, at_event.hi + 10.0 / 0.999, 1e-9);
  EXPECT_GT(later.width(), at_event.width());
}

TEST(SyncEngineTest, RoundTripTightensUpperSide) {
  // Only lower transit bounds (max unbounded): a one-way message gives a
  // one-sided estimate; the round trip closes the interval.
  const SystemSpec spec = line_spec(2, 1e-3, 0.1, kNoBound);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s1 = fac.send(1, 50.0, 0);   // my probe
  engine.ingest(s1);
  EXPECT_EQ(engine.estimate(50.0), Interval::everything());
  const EventRecord r1 = fac.receive(0, 20.0, s1);  // source receives
  const EventRecord s2 = fac.send(0, 20.5, 1);      // source replies
  const EventRecord r2 = fac.receive(1, 51.2, s2);  // I receive
  engine.ingest(r1);
  engine.ingest(s2);
  engine.ingest(r2);
  const Interval est = engine.estimate(51.2);
  EXPECT_TRUE(est.bounded());
  // lo: source reply sent at RT 20.5, took >= 0.1.
  EXPECT_NEAR(est.lo, 20.6, 1e-9);
  // hi: my probe left at my 50.0, arrived at source RT 20.0 after >= 0.1,
  // so RT(my send) <= 19.9; my elapsed local 1.2 maps to <= 1.2/(1-rho).
  EXPECT_NEAR(est.hi, 19.9 + 1.2 / 0.999, 1e-6);
}

TEST(SyncEngineTest, LivenessMatchesViewOnHandSequence) {
  const SystemSpec spec = line_spec(3, 1e-4, 0.0, 1.0);
  EngineHarness h(spec, 1);
  EventFactory fac(3);
  const EventRecord s = fac.send(0, 1.0, 1);
  const EventRecord r = fac.receive(1, 1.5, s);
  const EventRecord s2 = fac.send(1, 2.0, 2);
  h.ingest(s);
  h.check_liveness();
  h.ingest(r);
  h.check_liveness();  // s dead (receive seen, superseded)... unless last
  h.ingest(s2);
  h.check_liveness();
  EXPECT_TRUE(h.engine().is_live(s2.id));  // pending send
  EXPECT_FALSE(h.engine().is_live(r.id));  // superseded receive
}

TEST(SyncEngineTest, PendingSendStaysLiveUntilReceiveIngested) {
  const SystemSpec spec = line_spec(3, 1e-4, 0.0, 1.0);
  EngineHarness h(spec, 1);
  EventFactory fac(3);
  const EventRecord s = fac.send(1, 1.0, 2);
  const EventRecord x = fac.internal(1, 2.0);
  h.ingest(s);
  h.ingest(x);
  EXPECT_TRUE(h.engine().is_live(s.id));
  const EventRecord r = fac.receive(2, 3.0, s);
  h.ingest(r);
  h.check_liveness();
  EXPECT_FALSE(h.engine().is_live(s.id));
}

TEST(SyncEngineTest, LossDeclarationKillsPendingSend) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 1.0);
  EngineHarness h(spec, 0);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 1.0, 1);
  h.ingest(s);
  EXPECT_TRUE(h.engine().is_live(s.id));
  const EventRecord decl = fac.loss_decl(0, 2.0, s);
  h.ingest(decl);
  h.check_liveness();
  EXPECT_FALSE(h.engine().is_live(s.id));
  EXPECT_EQ(h.engine().live_count(), 1u);  // just the declaration point
}

TEST(SyncEngineTest, OutOfOrderIngestThrows) {
  const SystemSpec spec = line_spec(2);
  SyncEngine engine(spec, 0);
  EventFactory fac(2);
  fac.internal(0, 1.0);  // consume seq 0
  EXPECT_THROW(engine.ingest(fac.internal(0, 2.0)), std::logic_error);
}

TEST(SyncEngineTest, ReceiveWithoutSendThrows) {
  const SystemSpec spec = line_spec(2);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 1.0, 1);
  EXPECT_THROW(engine.ingest(fac.receive(1, 2.0, s)), std::logic_error);
}

TEST(SyncEngineTest, BackwardClockThrows) {
  const SystemSpec spec = line_spec(2);
  SyncEngine engine(spec, 0);
  EventFactory fac(2);
  engine.ingest(fac.internal(0, 5.0));
  EXPECT_THROW(engine.ingest(fac.internal(0, 4.0)), std::logic_error);
}

TEST(SyncEngineTest, InconsistentSpecDetected) {
  // Claim the link delivers within [0, 0.1] but stamp a round trip whose
  // local times are impossible under drift 0: a negative cycle.
  const SystemSpec spec = line_spec(2, 0.0, 0.0, 0.1);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 20.0, s);   // fine on its own
  const EventRecord s2 = fac.send(1, 20.1, 0);
  const EventRecord r2 = fac.receive(0, 10.05, s2);  // impossible: rt loops
  engine.ingest(s);
  engine.ingest(r);
  engine.ingest(s2);
  EXPECT_THROW(engine.ingest(r2), std::logic_error);
}

TEST(SyncEngineTest, ProcessingSlackWidensTransitUpperBoundOnly) {
  // Same geometry as SingleMessageBoundsMatchTheorem, but the receive
  // record was minted 0.3 local seconds after the datagram arrived
  // (handler queueing).  Only the upper transit bound absorbs the slack.
  const SystemSpec spec = line_spec(2, 0.0, 0.2, 1.0);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 100.0, s, 0.3);
  engine.ingest(s);
  engine.ingest(r);
  const Interval est = engine.estimate(100.0);
  EXPECT_TRUE(intervals_close(est, Interval{10.2, 11.3}));
}

TEST(SyncEngineTest, ProcessingSlackAvoidsFalseNegativeCycle) {
  // A round trip pins the offset, then the reply's mint-to-mint "transit"
  // reads 0.25-0.35 s against a 0.1 s wire budget — exactly what a receive
  // that waited out a lock convoy looks like.  Without the slack the view
  // declares the (honest) execution inconsistent; with the handler latency
  // carried on the record it must ingest cleanly.
  const SystemSpec spec = line_spec(2, 0.0, 0.0, 0.1);
  SyncEngine engine(spec, 0);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 20.0, s);
  const EventRecord s2 = fac.send(1, 20.1, 0);
  const EventRecord r2 = fac.receive(0, 10.45, s2, 0.3);
  engine.ingest(s);
  engine.ingest(r);
  engine.ingest(s2);
  EventRecord r2_bad = r2;
  r2_bad.slack = 0.0;
  EXPECT_THROW(engine.ingest(r2_bad), std::logic_error);
  engine.ingest(r2);  // a failed ingest leaves the engine untouched
  // Death processing has collected the matched send and the superseded
  // receive: only the last event of each processor stays live.
  EXPECT_EQ(engine.live_count(), 2u);
}

TEST(SyncEngineTest, NegativeSlackThrows) {
  const SystemSpec spec = line_spec(2, 0.0, 0.0, 0.1);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  EventRecord r = fac.receive(1, 20.0, s);
  r.slack = -0.1;
  engine.ingest(s);
  EXPECT_THROW(engine.ingest(r), std::logic_error);
}

TEST(SyncEngineTest, RtDifferenceBoundsMatchTheoremForm) {
  const SystemSpec spec = line_spec(2, 1e-3, 0.2, 1.0);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 100.0, s);
  engine.ingest(s);
  engine.ingest(r);
  const Interval b = engine.rt_difference_bounds(r.id, s.id);
  // RT(r) - RT(s) in [0.2, 1.0] exactly (the transit bounds).
  EXPECT_TRUE(intervals_close(b, Interval{0.2, 1.0}));
}

// Property: random causally consistent multi-processor histories, engine
// distances/liveness always match the batch recomputation.
class SyncEnginePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SyncEnginePropertyTest, MatchesViewOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 77);
  const std::size_t n = 3 + rng.uniform_index(3);
  const SystemSpec spec = clique_spec(n, 1e-3, 0.05, 2.0);
  EngineHarness h(spec, 0);
  EventFactory fac(n);

  // Ground-truth-ish per-proc local clocks advance as we generate.
  std::vector<double> lt(n, 0.0);
  std::vector<EventRecord> pending_sends;
  for (int step = 0; step < 80; ++step) {
    const ProcId p = static_cast<ProcId>(rng.uniform_index(n));
    lt[p] += rng.uniform(0.01, 0.5);
    const double action = rng.next_double();
    if (action < 0.4) {
      ProcId q = static_cast<ProcId>(rng.uniform_index(n));
      if (q == p) q = static_cast<ProcId>((q + 1) % n);
      const EventRecord s = fac.send(p, lt[p], q);
      h.ingest(s);
      pending_sends.push_back(s);
    } else if (action < 0.8 && !pending_sends.empty()) {
      // Deliver a random pending send with a transit consistent with the
      // declared bounds AND the receiver's monotone clock (all clocks run at
      // rate 1 here, so local numbers double as real times).
      const std::size_t k = rng.uniform_index(pending_sends.size());
      const EventRecord s = pending_sends[k];
      const ProcId q = s.peer;
      const double min_transit = std::max(0.05, lt[q] - s.lt);
      if (min_transit > 2.0) continue;  // undeliverable in-bounds: stays live
      pending_sends.erase(pending_sends.begin() +
                          static_cast<std::ptrdiff_t>(k));
      lt[q] = s.lt + rng.uniform(min_transit, 2.0);
      h.ingest(fac.receive(q, lt[q], s));
    } else {
      h.ingest(fac.internal(p, lt[p]));
    }
    if (step % 16 == 15) {
      h.check_liveness();
      h.check_distances();
    }
  }
  h.check_liveness();
  h.check_distances();
}

INSTANTIATE_TEST_SUITE_P(RandomHistories, SyncEnginePropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace driftsync
