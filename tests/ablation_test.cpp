// Ablation tests: the two garbage-collection mechanisms (AGDP dead nodes,
// Section 3.2; history buffer, Figure 2) change costs only — never results.
#include <gtest/gtest.h>

#include <memory>

#include "core/history.h"
#include "core/optimal_csa.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workloads/apps.h"
#include "workloads/topology.h"

namespace driftsync {
namespace {

using testing::EventFactory;
using testing::line_spec;

TEST(HistoryGcAblationTest, BufferGrowsWithoutGc) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 1.0);
  HistoryProtocol::Options no_gc;
  no_gc.disable_gc = true;
  HistoryProtocol with(spec, 0);
  HistoryProtocol without(spec, 0, no_gc);
  EventFactory fac_a(2), fac_b(2);
  for (int i = 0; i < 50; ++i) {
    const double t = 1.0 + i;
    const EventRecord sa = fac_a.send(0, t, 1);
    const EventRecord sb = fac_b.send(0, t, 1);
    with.fill_message(1, sa);
    without.fill_message(1, sb);
  }
  EXPECT_EQ(with.history_size(), 0u);     // single neighbor: drained
  EXPECT_EQ(without.history_size(), 50u);  // everything retained
}

TEST(HistoryGcAblationTest, MessagesIdenticalWithAndWithoutGc) {
  // The C arrays alone decide reports; GC only trims memory.
  const SystemSpec spec = line_spec(3, 1e-4, 0.0, 1.0);
  HistoryProtocol::Options no_gc;
  no_gc.disable_gc = true;
  std::vector<std::unique_ptr<HistoryProtocol>> with, without;
  for (ProcId p = 0; p < 3; ++p) {
    with.push_back(std::make_unique<HistoryProtocol>(spec, p));
    without.push_back(std::make_unique<HistoryProtocol>(spec, p, no_gc));
  }
  EventFactory fac_a(3), fac_b(3);
  const auto exchange = [&](ProcId from, ProcId to, double ts, double tr) {
    const EventRecord sa = fac_a.send(from, ts, to);
    const EventRecord sb = fac_b.send(from, ts, to);
    const EventBatch ba = with[from]->fill_message(to, sa);
    const EventBatch bb = without[from]->fill_message(to, sb);
    ASSERT_EQ(ba, bb);
    with[to]->receive_message(from, ba);
    without[to]->receive_message(from, bb);
    with[to]->record_own_event(fac_a.receive(to, tr, sa));
    without[to]->record_own_event(fac_b.receive(to, tr, sb));
  };
  double t = 0.0;
  for (int round = 0; round < 15; ++round) {
    exchange(0, 1, t + 0.1, t + 0.2);
    exchange(1, 2, t + 0.3, t + 0.4);
    exchange(2, 1, t + 0.5, t + 0.6);
    exchange(1, 0, t + 0.7, t + 0.8);
    t += 1.0;
  }
  EXPECT_GT(without[1]->history_size(), 4 * with[1]->history_size());
}

TEST(AgdpGcAblationTest, EstimatesIdenticalWithAndWithoutGc) {
  // Lemma 3.4, white-box at the CSA level: disabling dead-node removal must
  // not change a single estimate on an identical execution.
  workloads::TopoParams params;
  params.rho = 200e-6;
  params.latency = sim::LatencyModel::uniform(0.002, 0.03);
  const workloads::Network net = workloads::make_ring(4, params);
  sim::SimConfig cfg;
  cfg.seed = 21;
  sim::Simulator simulator(net.spec, net.links, cfg);
  Rng rng(3);
  for (ProcId p = 0; p < net.spec.num_procs(); ++p) {
    std::vector<std::unique_ptr<Csa>> csas;
    csas.push_back(std::make_unique<OptimalCsa>());
    OptimalCsa::Options ablated;
    ablated.ablate_keep_dead_nodes = true;
    csas.push_back(std::make_unique<OptimalCsa>(ablated));
    const double rho = net.spec.clock(p).rho;
    sim::ClockModel clock =
        p == net.spec.source()
            ? sim::ClockModel::constant(0.0, 1.0)
            : sim::ClockModel::constant(rng.uniform(-9.0, 9.0),
                                        1.0 + rng.uniform(-rho, rho));
    simulator.attach_node(p, std::move(clock),
                          std::make_unique<workloads::GossipApp>(
                              workloads::GossipApp::Config{0.2, 0.5}),
                          std::move(csas));
  }
  struct Obs : sim::SimObserver {
    void on_event(sim::Simulator& sim, const EventRecord& rec,
                  RealTime) override {
      const Interval gc = sim.csa(rec.id.proc, 0).estimate(rec.lt);
      const Interval no_gc = sim.csa(rec.id.proc, 1).estimate(rec.lt);
      // Equal up to floating-point association order (paths through dead
      // nodes re-derive the same minima with different rounding).
      EXPECT_TRUE(intervals_close(gc, no_gc, 1e-12))
          << gc.str() << " vs " << no_gc.str();
      ++n;
    }
    int n = 0;
  } obs;
  simulator.set_observer(&obs);
  simulator.run_until(8.0);
  EXPECT_GT(obs.n, 50);
  // ... and the ablated node set is much larger.
  const CsaStats gc = simulator.csa(1, 0).stats();
  const CsaStats no_gc = simulator.csa(1, 1).stats();
  EXPECT_GT(no_gc.max_live_points, 4 * gc.max_live_points);
}

}  // namespace
}  // namespace driftsync
