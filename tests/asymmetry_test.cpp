// Tests for per-direction link bounds (asymmetric links) and virtual
// reference links (negative lower transit bounds — the paper's §4 modeling
// of stratum-0 server accuracy).
#include <gtest/gtest.h>

#include <memory>

#include "baselines/full_view_csa.h"
#include "baselines/ntp_csa.h"
#include "core/optimal_csa.h"
#include "core/sync_engine.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workloads/apps.h"

namespace driftsync {
namespace {

using testing::EventFactory;

TEST(AsymmetricLinkTest, DirectionalAccessors) {
  const LinkSpec link(2, 5, 0.001, 0.010, 0.020, 0.080);
  EXPECT_DOUBLE_EQ(link.min_from(2), 0.001);
  EXPECT_DOUBLE_EQ(link.max_from(2), 0.010);
  EXPECT_DOUBLE_EQ(link.min_from(5), 0.020);
  EXPECT_DOUBLE_EQ(link.max_from(5), 0.080);
  EXPECT_THROW((void)link.min_from(7), std::logic_error);
}

TEST(AsymmetricLinkTest, SymmetricConstructorFillsBoth) {
  const LinkSpec link(0, 1, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(link.min_from(0), link.min_from(1));
  EXPECT_DOUBLE_EQ(link.max_from(0), link.max_from(1));
}

TEST(AsymmetricLinkTest, SpecValidatesBothDirections) {
  EXPECT_THROW(SystemSpec({ClockSpec{0.0}, ClockSpec{1e-4}},
                          {LinkSpec(0, 1, 0.0, 1.0, 2.0, 1.0)}, 0),
               std::logic_error);
}

SystemSpec asym_spec() {
  // Downlink (0 -> 1) is fast and tight; uplink (1 -> 0) slow and loose.
  return SystemSpec({ClockSpec{0.0}, ClockSpec{1e-4}},
                    {LinkSpec(0, 1, 0.001, 0.002, 0.050, 0.200)}, 0);
}

TEST(AsymmetricLinkTest, EngineUsesDirectionalBounds) {
  const SystemSpec spec = asym_spec();
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  // A single downlink message: transit known within [1, 2] ms.
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 500.0, s);
  engine.ingest(s);
  engine.ingest(r);
  const Interval est = engine.estimate(500.0);
  EXPECT_TRUE(intervals_close(est, Interval{10.001, 10.002}));
}

TEST(AsymmetricLinkTest, UplinkUsesItsOwnBounds) {
  const SystemSpec spec = asym_spec();
  SyncEngine engine(spec, 0);  // view from the source side
  EventFactory fac(2);
  const EventRecord s = fac.send(1, 100.0, 0);
  const EventRecord r = fac.receive(0, 20.0, s);
  engine.ingest(s);
  engine.ingest(r);
  // RT(r) - RT(s) in [0.05, 0.2] (uplink bounds).
  EXPECT_TRUE(intervals_close(engine.rt_difference_bounds(r.id, s.id),
                              Interval{0.05, 0.2}));
}

TEST(AsymmetricLinkTest, SimulatorSamplesPerDirection) {
  const SystemSpec spec = asym_spec();
  sim::SimConfig cfg;
  cfg.seed = 2;
  cfg.record_trace = true;
  sim::LinkRuntime rt;
  rt.latency = sim::LatencyModel::uniform(0.001, 0.002);
  rt.latency_reverse = sim::LatencyModel::uniform(0.050, 0.200);
  sim::Simulator simulator(spec, {rt}, cfg);
  workloads::ProbeApp::Config pc;
  pc.upstreams = {0};
  pc.period = 0.3;
  for (ProcId p = 0; p < 2; ++p) {
    std::vector<std::unique_ptr<Csa>> csas;
    csas.push_back(std::make_unique<OptimalCsa>());
    workloads::ProbeApp::Config cfg_p = p == 1 ? pc : workloads::ProbeApp::Config{};
    simulator.attach_node(p, sim::ClockModel::constant(p * 5.0, 1.0),
                          std::make_unique<workloads::ProbeApp>(cfg_p),
                          std::move(csas));
  }
  simulator.run_until(10.0);
  // Check ground-truth transit per direction from the trace.
  std::map<std::uint64_t, RealTime> send_rt;
  int down = 0, up = 0;
  for (const sim::TraceEntry& te : simulator.trace()) {
    if (te.record.kind == EventKind::kSend) {
      send_rt[te.record.id.pack()] = te.rt;
    } else if (te.record.kind == EventKind::kReceive) {
      const double transit = te.rt - send_rt.at(te.record.match.pack());
      if (te.record.peer == 0) {
        EXPECT_LE(transit, 0.002 + 1e-12);
        ++down;
      } else {
        EXPECT_GE(transit, 0.050 - 1e-12);
        ++up;
      }
    }
  }
  EXPECT_GT(down, 10);
  EXPECT_GT(up, 10);
}

TEST(AsymmetricLinkTest, RejectsWrongDirectionModel) {
  const SystemSpec spec = asym_spec();
  sim::LinkRuntime rt;
  rt.latency = sim::LatencyModel::uniform(0.050, 0.200);  // violates a->b
  EXPECT_THROW(sim::Simulator(spec, {rt}, sim::SimConfig{}),
               std::logic_error);
}

TEST(AsymmetricLinkTest, OptimalMatchesOracleUnderAsymmetry) {
  const SystemSpec spec = asym_spec();
  sim::SimConfig cfg;
  cfg.seed = 6;
  sim::LinkRuntime rt;
  rt.latency = sim::LatencyModel::uniform(0.001, 0.002);
  rt.latency_reverse = sim::LatencyModel::uniform(0.050, 0.200);
  sim::Simulator simulator(spec, {rt}, cfg);
  for (ProcId p = 0; p < 2; ++p) {
    std::vector<std::unique_ptr<Csa>> csas;
    csas.push_back(std::make_unique<OptimalCsa>());
    csas.push_back(std::make_unique<FullViewCsa>());
    csas.push_back(std::make_unique<NtpCsa>());
    workloads::ProbeApp::Config pc;
    if (p == 1) {
      pc.upstreams = {0};
      pc.period = 0.4;
    }
    simulator.attach_node(
        p,
        p == 0 ? sim::ClockModel::constant(0.0, 1.0)
               : sim::ClockModel::constant(7.0, 1.00005),
        std::make_unique<workloads::ProbeApp>(pc), std::move(csas));
  }
  struct Obs : sim::SimObserver {
    void on_event(sim::Simulator& sim, const EventRecord& rec,
                  RealTime rtime) override {
      const Interval fast = sim.csa(rec.id.proc, 0).estimate(rec.lt);
      const Interval slow = sim.csa(rec.id.proc, 1).estimate(rec.lt);
      const Interval ntp = sim.csa(rec.id.proc, 2).estimate(rec.lt);
      EXPECT_TRUE(intervals_close(fast, slow, 1e-7));
      EXPECT_TRUE(fast.contains(rtime));
      EXPECT_TRUE(ntp.contains(rtime));  // conservative asymmetric bound
      ++n;
    }
    int n = 0;
  } obs;
  simulator.set_observer(&obs);
  simulator.run_until(12.0);
  EXPECT_GT(obs.n, 50);
  // The optimal algorithm nails the tight downlink; NTP's midpoint halves
  // the RTT and must carry a much wider error bound.
  const Interval opt = simulator.csa(1, 0).estimate(
      simulator.clock(1).lt_at(12.0));
  const Interval ntp = simulator.csa(1, 2).estimate(
      simulator.clock(1).lt_at(12.0));
  EXPECT_LT(opt.width() * 10, ntp.width());
}

// ------------------------------------------------ virtual reference links

TEST(ReferenceLinkTest, NegativeLowerBoundAccepted) {
  const SystemSpec spec({ClockSpec{0.0}, ClockSpec{1e-4}},
                        {LinkSpec(0, 1, -0.001, 0.001)}, 0);
  EXPECT_DOUBLE_EQ(spec.link_between(0, 1)->min_from(0), -0.001);
}

TEST(ReferenceLinkTest, ReadingAccuracyBecomesEstimateWidth) {
  // A reference "reading" is a message over a [-a, +a] link: one reading
  // pins the source time to within 2a (plus drift afterwards).
  const double a = 0.0005;
  const SystemSpec spec({ClockSpec{0.0}, ClockSpec{1e-4}},
                        {LinkSpec(0, 1, -a, a)}, 0);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 50.0, 1);
  const EventRecord r = fac.receive(1, 1000.0, s);
  engine.ingest(s);
  engine.ingest(r);
  const Interval est = engine.estimate(1000.0);
  EXPECT_TRUE(intervals_close(est, Interval{50.0 - a, 50.0 + a}));
}

TEST(ReferenceLinkTest, SimulatedGpsReceiverStaysCorrect) {
  // Physical delivery is [0, a] (non-negative), well inside the claimed
  // [-a, +a]: the estimate must contain true time at all probes.
  const double a = 0.001;
  const SystemSpec spec({ClockSpec{0.0}, ClockSpec{1e-4}},
                        {LinkSpec(0, 1, -a, a)}, 0);
  sim::SimConfig cfg;
  cfg.seed = 4;
  cfg.probe_interval = 0.2;
  sim::LinkRuntime rt;
  rt.latency = sim::LatencyModel::uniform(0.0, a);
  sim::Simulator simulator(spec, {rt}, cfg);
  struct BeaconApp : sim::App {
    void on_start(sim::NodeApi& api) override {
      if (api.self() == 0) api.set_timer(1.0, 1);
    }
    void on_timer(sim::NodeApi& api, std::uint32_t) override {
      api.send(1, 1);
      api.set_timer(1.0, 1);
    }
  };
  for (ProcId p = 0; p < 2; ++p) {
    std::vector<std::unique_ptr<Csa>> csas;
    csas.push_back(std::make_unique<OptimalCsa>());
    simulator.attach_node(p, sim::ClockModel::constant(p * 3.0, 1.0),
                          std::make_unique<BeaconApp>(), std::move(csas));
  }
  struct Obs : sim::SimObserver {
    void on_probe(sim::Simulator& sim, RealTime rtime) override {
      const Interval est =
          sim.csa(1, 0).estimate(sim.clock(1).lt_at(rtime));
      EXPECT_TRUE(est.contains(rtime));
      if (est.bounded()) {
        EXPECT_LE(est.width(), 2 * 0.001 + 1.2 * 2e-4);
        ++bounded;
      }
    }
    int bounded = 0;
  } obs;
  simulator.set_observer(&obs);
  simulator.run_until(20.0);
  EXPECT_GT(obs.bounded, 80);
}

}  // namespace
}  // namespace driftsync
