// Serving-tier tests (DESIGN.md decision 17): SessionTable slab/LRU/cap
// semantics, the Server request path, ClientEstimator interval math and its
// feasibility screen, and an end-to-end exchange against a serving node in
// the 3-node ThreadHub fixture — the client's interval must bracket true
// source time without the client ever joining the peer mesh.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/errors.h"
#include "common/interval.h"
#include "runtime/datagram.h"
#include "runtime/node.h"
#include "runtime/thread_transport.h"
#include "runtime/time_source.h"
#include "serve/client_session.h"
#include "serve/server.h"
#include "serve/session_table.h"
#include "test_util.h"

namespace driftsync {
namespace {

using driftsync::testing::ThreeNodeNet;
using serve::ClientEstimator;
using serve::ClientSession;
using serve::Server;
using serve::SessionTable;

SessionTable::Options table_opts(std::size_t cap, double idle = 100.0,
                                 double grace = 1.0) {
  SessionTable::Options opts;
  opts.max_clients = cap;
  opts.idle_timeout = idle;
  opts.evict_grace = grace;
  return opts;
}

TEST(SessionTableTest, TouchCreatesThenHits) {
  SessionTable table(table_opts(4));
  ClientSession* s = table.touch(7, 1.0);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->client_id, 7u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.counters().inserts, 1u);

  ClientSession* again = table.touch(7, 2.0);
  EXPECT_EQ(again, s);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.counters().hits, 1u);
  EXPECT_DOUBLE_EQ(again->last_active, 2.0);
}

TEST(SessionTableTest, EvictsLruTailAtCapOncePastGrace) {
  SessionTable table(table_opts(2, 100.0, 1.0));
  ASSERT_NE(table.touch(1, 0.0), nullptr);
  ASSERT_NE(table.touch(2, 0.5), nullptr);
  // Tail is client 1, idle 1.5 s >= the 1 s grace: the newcomer evicts it.
  ClientSession* s = table.touch(3, 1.5);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->client_id, 3u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.counters().evicted, 1u);
  EXPECT_EQ(table.find(1), nullptr);
  EXPECT_NE(table.find(2), nullptr);
}

TEST(SessionTableTest, RejectsNewcomerInsideGraceWindow) {
  SessionTable table(table_opts(2, 100.0, 1.0));
  ASSERT_NE(table.touch(1, 0.0), nullptr);
  ASSERT_NE(table.touch(2, 0.1), nullptr);
  // Tail idle 0.4 s < 1 s grace: an active fleet cannot be churned out.
  EXPECT_EQ(table.touch(3, 0.5), nullptr);
  EXPECT_EQ(table.counters().rejected, 1u);
  EXPECT_EQ(table.size(), 2u);
  // Residents keep being served at the cap.
  EXPECT_NE(table.touch(1, 0.6), nullptr);
  EXPECT_EQ(table.counters().hits, 1u);
}

TEST(SessionTableTest, TouchRefreshesLruOrder) {
  SessionTable table(table_opts(2, 100.0, 0.0));
  ASSERT_NE(table.touch(1, 0.0), nullptr);
  ASSERT_NE(table.touch(2, 0.1), nullptr);
  ASSERT_NE(table.touch(1, 0.2), nullptr);  // 2 becomes the tail.
  ASSERT_NE(table.touch(3, 0.3), nullptr);
  EXPECT_EQ(table.find(2), nullptr);
  EXPECT_NE(table.find(1), nullptr);
  EXPECT_NE(table.find(3), nullptr);
}

TEST(SessionTableTest, ReapsIdleSessionsOnly) {
  SessionTable table(table_opts(4, 10.0));
  ASSERT_NE(table.touch(1, 0.0), nullptr);
  ASSERT_NE(table.touch(2, 5.0), nullptr);
  ASSERT_NE(table.touch(3, 11.0), nullptr);
  // At t=16: client 1 idle 16s and client 2 idle 11s exceed the timeout;
  // client 3 (idle 5s) survives.
  EXPECT_EQ(table.reap_idle(16.0), 2u);
  EXPECT_EQ(table.counters().reaped, 2u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(1), nullptr);
  EXPECT_EQ(table.find(2), nullptr);
  EXPECT_NE(table.find(3), nullptr);
}

TEST(SessionTableTest, MemoryStaysFlatAcrossChurn) {
  SessionTable table(table_opts(8, 100.0, 0.0));
  const std::size_t bytes_at_birth = table.memory_bytes();
  EXPECT_GT(bytes_at_birth, 0u);
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    ASSERT_NE(table.touch(id, static_cast<double>(id)), nullptr);
  }
  EXPECT_EQ(table.memory_bytes(), bytes_at_birth);
  EXPECT_EQ(table.size(), 8u);
  EXPECT_EQ(table.counters().evicted, 992u);
}

TEST(SessionTableTest, SlotsRecycleAfterReap) {
  SessionTable table(table_opts(2, 1.0, 0.0));
  ASSERT_NE(table.touch(1, 0.0), nullptr);
  ASSERT_NE(table.touch(2, 0.0), nullptr);
  EXPECT_EQ(table.reap_idle(5.0), 2u);
  EXPECT_EQ(table.size(), 0u);
  ASSERT_NE(table.touch(3, 5.0), nullptr);
  ASSERT_NE(table.touch(4, 5.0), nullptr);
  EXPECT_EQ(table.size(), 2u);
}

TEST(ClientSessionTest, RttWindowTracksMinimum) {
  ClientSession s;
  EXPECT_DOUBLE_EQ(s.min_rtt(), 0.0);
  s.note_rtt(0.030);
  s.note_rtt(0.012);
  s.note_rtt(0.045);
  EXPECT_DOUBLE_EQ(s.min_rtt(), 0.012);
  EXPECT_GT(s.srtt, 0.0);
  // The window forgets: 8 larger samples push the 12 ms minimum out.
  for (int i = 0; i < 8; ++i) s.note_rtt(0.050);
  EXPECT_DOUBLE_EQ(s.min_rtt(), 0.050);
}

TEST(ServerTest, FillsResponseFromEstimate) {
  Server::Options opts;
  opts.sessions = table_opts(4);
  Server server(opts);
  runtime::ClientReq req;
  req.client_id = 9;
  req.req_seq = 1;
  req.client_lt = 123.5;
  req.last_rtt = 0.004;
  runtime::ClientResp resp;
  const Interval est{100.0, 100.25};
  ASSERT_TRUE(server.handle(req, 2, est, 777.0, 1.0, &resp));
  EXPECT_EQ(resp.client_id, 9u);
  EXPECT_EQ(resp.req_seq, 1u);
  EXPECT_DOUBLE_EQ(resp.echo_lt, 123.5);
  EXPECT_EQ(resp.from, 2u);
  EXPECT_DOUBLE_EQ(resp.server_lt, 777.0);
  EXPECT_DOUBLE_EQ(resp.lo, 100.0);
  EXPECT_DOUBLE_EQ(resp.hi, 100.25);
  EXPECT_EQ(server.requests(), 1u);
  const ClientSession* s = server.sessions().find(9);
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->min_rtt(), 0.004);
}

TEST(ServerTest, RejectsAtCapWithoutResponse) {
  Server::Options opts;
  opts.sessions = table_opts(1, 100.0, 10.0);
  Server server(opts);
  runtime::ClientReq req;
  req.client_id = 1;
  req.req_seq = 1;
  runtime::ClientResp resp;
  ASSERT_TRUE(server.handle(req, 0, Interval{0, 1}, 0.0, 0.0, &resp));
  req.client_id = 2;
  EXPECT_FALSE(server.handle(req, 0, Interval{0, 1}, 0.1, 0.1, &resp));
  EXPECT_EQ(server.sessions().counters().rejected, 1u);
  EXPECT_EQ(server.requests(), 1u);
}

TEST(ServeTest, ClientTraceIdsAreNonzeroDistinctAndTagged) {
  const std::uint64_t a = serve::client_trace_id(1, 1);
  const std::uint64_t b = serve::client_trace_id(1, 2);
  const std::uint64_t c = serve::client_trace_id(2, 1);
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  // Top bit keeps client-exchange ids disjoint from mesh-minted ids.
  EXPECT_NE(a & (std::uint64_t{1} << 63), 0u);
}

ClientEstimator::Options estimator_opts(std::uint64_t id = 42,
                                        double rho = 1e-4) {
  ClientEstimator::Options opts;
  opts.client_id = id;
  opts.rho = rho;
  return opts;
}

runtime::ClientResp respond_to(const runtime::ClientReq& req, double lo,
                               double hi) {
  runtime::ClientResp resp;
  resp.client_id = req.client_id;
  resp.req_seq = req.req_seq;
  resp.echo_lt = req.client_lt;
  resp.from = 0;
  resp.server_lt = 0.0;
  resp.lo = lo;
  resp.hi = hi;
  return resp;
}

TEST(ClientEstimatorTest, AcceptsResponseAndWidensHiByRtt) {
  ClientEstimator est(estimator_opts());
  const runtime::ClientReq req = est.make_request(100.0);
  EXPECT_EQ(req.req_seq, 1u);
  const runtime::ClientResp resp = respond_to(req, 50.0, 50.01);
  ASSERT_TRUE(est.on_response(resp, 100.05));
  EXPECT_EQ(est.accepted(), 1u);
  // rtt is the local-clock difference 100.05 - 100.0 (FP-inexact, so
  // compare to the subtraction, not the literal 0.05).
  const double rtt = 100.05 - 100.0;
  EXPECT_DOUBLE_EQ(est.last_rtt(), rtt);
  const Interval e = est.estimate(100.05);
  EXPECT_DOUBLE_EQ(e.lo, 50.0);
  // hi widened by rtt through the drift envelope: rtt / (1 - rho).
  EXPECT_NEAR(e.hi, 50.01 + rtt / (1.0 - 1e-4), 1e-12);
}

TEST(ClientEstimatorTest, UnansweredUntilFirstAccept) {
  ClientEstimator est(estimator_opts());
  EXPECT_FALSE(est.estimate(0.0).bounded());
}

TEST(ClientEstimatorTest, RenouncesWrongSeqEchoOrIdentity) {
  ClientEstimator est(estimator_opts());
  const runtime::ClientReq req = est.make_request(10.0);

  runtime::ClientResp resp = respond_to(req, 1.0, 2.0);
  resp.req_seq = 99;
  EXPECT_FALSE(est.on_response(resp, 10.01));

  resp = respond_to(req, 1.0, 2.0);
  resp.echo_lt = 10.5;  // Forged echo timestamp.
  EXPECT_FALSE(est.on_response(resp, 10.01));

  resp = respond_to(req, 1.0, 2.0);
  resp.client_id = 7;  // Someone else's response.
  EXPECT_FALSE(est.on_response(resp, 10.01));

  EXPECT_EQ(est.renounced(), 3u);
  EXPECT_EQ(est.accepted(), 0u);
  // The genuine response still lands afterwards.
  EXPECT_TRUE(est.on_response(respond_to(req, 1.0, 2.0), 10.01));
}

TEST(ClientEstimatorTest, RenouncesDuplicateOfAcceptedResponse) {
  ClientEstimator est(estimator_opts());
  const runtime::ClientReq req = est.make_request(10.0);
  const runtime::ClientResp resp = respond_to(req, 1.0, 2.0);
  ASSERT_TRUE(est.on_response(resp, 10.01));
  // A network duplicate must not be folded in twice.
  EXPECT_FALSE(est.on_response(resp, 10.02));
  EXPECT_EQ(est.accepted(), 1u);
  EXPECT_EQ(est.renounced(), 1u);
}

TEST(ClientEstimatorTest, RenouncesNonPositiveAndOverBudgetRtt) {
  ClientEstimator::Options opts = estimator_opts();
  opts.max_rtt = 0.1;
  ClientEstimator est(opts);
  runtime::ClientReq req = est.make_request(10.0);
  // Zero RTT: receive instant equals send instant, physically impossible.
  EXPECT_FALSE(est.on_response(respond_to(req, 1.0, 2.0), 10.0));
  req = est.make_request(20.0);
  // 0.2 s round trip exceeds the 0.1 s budget.
  EXPECT_FALSE(est.on_response(respond_to(req, 1.0, 2.0), 20.2));
  EXPECT_EQ(est.renounced(), 2u);
  EXPECT_EQ(est.accepted(), 0u);
}

TEST(ClientEstimatorTest, RenouncesInfeasibleResponseKeepingPrior) {
  ClientEstimator est(estimator_opts());
  runtime::ClientReq req = est.make_request(10.0);
  ASSERT_TRUE(est.on_response(respond_to(req, 100.0, 100.01), 10.005));
  const Interval prior = est.estimate(10.005);
  // A response claiming true time is ~900 s away contradicts the
  // drift-extrapolated prior: empty intersection, renounced, prior kept.
  req = est.make_request(10.1);
  EXPECT_FALSE(est.on_response(respond_to(req, 1000.0, 1000.01), 10.105));
  EXPECT_EQ(est.renounced(), 1u);
  const Interval after = est.estimate(10.005);
  EXPECT_DOUBLE_EQ(after.lo, prior.lo);
  EXPECT_DOUBLE_EQ(after.hi, prior.hi);
}

TEST(ClientEstimatorTest, IntersectionOnlyNarrowsKnowledge) {
  ClientEstimator est(estimator_opts());
  runtime::ClientReq req = est.make_request(10.0);
  ASSERT_TRUE(est.on_response(respond_to(req, 100.0, 100.5), 10.01));
  const Interval coarse = est.estimate(10.02);
  req = est.make_request(10.02);
  ASSERT_TRUE(est.on_response(respond_to(req, 100.1, 100.2), 10.03));
  const Interval fine = est.estimate(10.03);
  EXPECT_LT(fine.width(), coarse.width());
  // Knowledge monotonicity: the refined estimate sits inside the coarse
  // prior extrapolated to the same local instant (dlt = 0.01).
  const double rho = est.options().rho;
  EXPECT_GE(fine.lo, coarse.lo + 0.01 / (1.0 + rho) - 1e-12);
  EXPECT_LE(fine.hi, coarse.hi + 0.01 / (1.0 - rho) + 1e-12);
}

TEST(ClientEstimatorTest, ExtrapolationWidensThroughDriftEnvelope) {
  const double rho = 1e-3;
  ClientEstimator est(estimator_opts(42, rho));
  const runtime::ClientReq req = est.make_request(10.0);
  ASSERT_TRUE(est.on_response(respond_to(req, 100.0, 100.01), 10.01));
  const Interval now = est.estimate(10.01);
  const Interval later = est.estimate(20.01);  // 10 local seconds later.
  EXPECT_NEAR(later.lo, now.lo + 10.0 / (1.0 + rho), 1e-9);
  EXPECT_NEAR(later.hi, now.hi + 10.0 / (1.0 - rho), 1e-9);
  EXPECT_GT(later.width(), now.width());
}

// End-to-end: a client exchanging datagrams with a serving source node in
// the 3-node fixture obtains a bounded interval bracketing true source
// time.  The client's clock is SystemTimeSource — identical to the ground
// truth the fixture's source node runs on — so the bracket is checkable
// directly.
TEST(ServeIntegrationTest, ClientBracketsTruthThroughServingNode) {
  ThreeNodeNet net;
  net.hub.set_link(0, 1, 0.0005, 0.004);
  net.hub.set_link(1, 2, 0.001, 0.008);
  constexpr ProcId kClientProc = 77;
  net.hub.set_link(0, kClientProc, 0.0005, 0.004);

  runtime::NodeConfig cfg0 = net.config(0);
  cfg0.serve_max_clients = 8;
  std::vector<std::unique_ptr<runtime::Node>> nodes;
  nodes.push_back(net.make_node(std::move(cfg0), 0.0, 1.0));
  nodes.push_back(net.make_node(net.config(1), 3.25, 1.0 + 2e-4));
  nodes.push_back(net.make_node(net.config(2), -7.5, 1.0 - 1e-4));
  for (auto& node : nodes) node->start();

  ClientEstimator est(estimator_opts(4242, 5e-4));
  const runtime::SystemTimeSource clock;
  std::mutex mu;
  std::unique_ptr<runtime::Transport> endpoint =
      net.hub.endpoint(kClientProc);
  endpoint->start([&est, &clock, &mu](std::span<const std::uint8_t> bytes) {
    runtime::Datagram dgram;
    try {
      dgram = runtime::decode_datagram(bytes);
    } catch (const WireError&) {
      return;
    }
    if (const auto* resp = std::get_if<runtime::ClientResp>(&dgram)) {
      const std::lock_guard<std::mutex> lock(mu);
      est.on_response(*resp, clock.now());
    }
  });

  for (int round = 0; round < 100; ++round) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (est.accepted() >= 3 && est.estimate(clock.now()).bounded()) break;
      endpoint->send(0, runtime::encode_datagram(runtime::Datagram{
                            est.make_request(clock.now())}));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }

  {
    const std::lock_guard<std::mutex> lock(mu);
    ASSERT_GE(est.accepted(), 3u);
    const Interval e = est.estimate(clock.now());
    ASSERT_TRUE(e.bounded());
    const double truth = clock.now();
    EXPECT_LE(e.lo, truth);
    EXPECT_GE(e.hi, truth);
  }

  const runtime::NodeStats stats = nodes[0]->stats();
  EXPECT_GT(stats.serve_requests, 0u);
  EXPECT_EQ(stats.serve_active, 1u);
  EXPECT_EQ(stats.serve_rejected, 0u);

  endpoint->stop();
  for (auto& node : nodes) node->stop();
}

// The serving node's stats and Prometheus expositions carry the session
// counters (the CI smoke greps driftsync_serve_active off a live daemon).
TEST(ServeIntegrationTest, ServeCountersSurfaceInStatsAndMetrics) {
  ThreeNodeNet net;
  net.hub.set_link(0, 1, 0.0005, 0.004);
  net.hub.set_link(1, 2, 0.001, 0.008);
  constexpr ProcId kClientProc = 88;
  net.hub.set_link(0, kClientProc, 0.0005, 0.004);

  runtime::NodeConfig cfg0 = net.config(0);
  cfg0.serve_max_clients = 4;
  auto node0 = net.make_node(std::move(cfg0), 0.0, 1.0);
  node0->start();

  ClientEstimator est(estimator_opts(99));
  const runtime::SystemTimeSource clock;
  std::unique_ptr<runtime::Transport> endpoint =
      net.hub.endpoint(kClientProc);
  endpoint->start([](std::span<const std::uint8_t>) {});
  for (int round = 0; round < 50; ++round) {
    endpoint->send(0, runtime::encode_datagram(runtime::Datagram{
                          est.make_request(clock.now())}));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (node0->stats().serve_requests > 0) break;
  }
  EXPECT_GT(node0->stats().serve_requests, 0u);

  const std::string json = node0->stats_json();
  EXPECT_NE(json.find("\"serve_requests\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve_active\":1"), std::string::npos) << json;

  const std::string metrics = node0->metrics_text();
  EXPECT_NE(metrics.find("driftsync_serve_requests"), std::string::npos);
  EXPECT_NE(metrics.find("driftsync_serve_active"), std::string::npos);
  EXPECT_NE(metrics.find("driftsync_serve_width_seconds"), std::string::npos);

  endpoint->stop();
  node0->stop();
}

// A node with serving disabled counts client requests as ignored and emits
// zeroed serve counters (the stats keys are unconditional).
TEST(ServeIntegrationTest, DisabledNodeIgnoresClientRequests) {
  ThreeNodeNet net;
  net.hub.set_link(0, 1, 0.0005, 0.004);
  constexpr ProcId kClientProc = 66;
  net.hub.set_link(0, kClientProc, 0.0005, 0.004);

  auto node0 = net.make_node(net.config(0), 0.0, 1.0);  // No serve config.
  node0->start();

  ClientEstimator est(estimator_opts(5));
  std::unique_ptr<runtime::Transport> endpoint =
      net.hub.endpoint(kClientProc);
  endpoint->start([](std::span<const std::uint8_t>) {});
  endpoint->send(0, runtime::encode_datagram(
                        runtime::Datagram{est.make_request(1.0)}));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const runtime::NodeStats stats = node0->stats();
  EXPECT_EQ(stats.serve_requests, 0u);
  EXPECT_EQ(stats.serve_active, 0u);
  const std::string json = node0->stats_json();
  EXPECT_NE(json.find("\"serve_requests\":0"), std::string::npos) << json;

  endpoint->stop();
  node0->stop();
}

}  // namespace
}  // namespace driftsync
