// Tests for the compact wire encoding of report batches (the Section 3.1
// bit-complexity remark made concrete).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>

#include "common/rng.h"
#include "core/wire.h"
#include "test_util.h"

namespace driftsync::wire {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 0xffffffffull,
        0xffffffffffffffffull}) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    std::size_t offset = 0;
    EXPECT_EQ(get_varint(buf, offset), v);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(VarintTest, TruncatedThrows) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 300);
  buf.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW(get_varint(buf, offset), WireError);
}

TEST(WireTest, EmptyBatch) {
  const auto bytes = encode_batch({});
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_TRUE(decode_batch(bytes).empty());
}

TEST(WireTest, RoundTripAllKinds) {
  testing::EventFactory fac(4);
  EventBatch batch;
  batch.push_back(fac.internal(2, 1.5));
  const EventRecord s = fac.send(0, 2.25, 3);
  batch.push_back(s);
  batch.push_back(fac.receive(3, 3.75, s));
  const EventRecord s2 = fac.send(0, 4.0, 1);
  batch.push_back(s2);
  batch.push_back(fac.loss_decl(0, 5.0, s2));
  const auto bytes = encode_batch(batch);
  EXPECT_EQ(decode_batch(bytes), batch);
  EXPECT_EQ(bytes.size(), encoded_size(batch));
}

TEST(WireTest, ContiguousRunsCompressWell) {
  // The history protocol ships contiguous per-processor runs: seq deltas and
  // proc repeats should collapse to the flag byte.
  testing::EventFactory fac(2);
  EventBatch batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(fac.internal(1, 10.0 + i));
  }
  const auto bytes = encode_batch(batch);
  // flags(1) + lt(8) per record after the first, plus tiny header.
  EXPECT_LE(bytes.size(), 100u * 9u + 8u);
  EXPECT_LT(bytes.size(), batch.size() * kEventRecordWireBytes / 2);
  EXPECT_EQ(decode_batch(bytes), batch);
}

TEST(WireTest, TruncationThrows) {
  testing::EventFactory fac(2);
  const auto bytes = encode_batch({fac.internal(0, 1.0)});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(decode_batch(prefix), WireError) << "cut=" << cut;
  }
}

TEST(WireTest, TrailingBytesThrow) {
  testing::EventFactory fac(2);
  auto bytes = encode_batch({fac.internal(0, 1.0)});
  bytes.push_back(0);
  EXPECT_THROW(decode_batch(bytes), WireError);
}

TEST(WireTest, SpecialDoubleValues) {
  testing::EventFactory fac(2);
  EventBatch batch;
  EventRecord r = fac.internal(0, 0.0);
  r.lt = -0.0;
  batch.push_back(r);
  const auto decoded = decode_batch(encode_batch(batch));
  EXPECT_EQ(std::signbit(decoded[0].lt), true);
}

TEST(WireTest, ReceiveSlackRoundTrips) {
  testing::EventFactory fac(2);
  const EventRecord s = fac.send(0, 1.0, 1);
  EventBatch batch{s, fac.receive(1, 2.0, s, 0.0625)};
  const auto bytes = encode_batch(batch);
  EXPECT_EQ(bytes.size(), encoded_size(batch));
  EXPECT_EQ(decode_batch(bytes), batch);
  // Zero slack costs zero bytes: the flag (and its double) are absent.
  EventBatch no_slack{s, fac.receive(1, 2.0, s)};
  no_slack[1].id = batch[1].id;  // same ids, only the slack differs
  EXPECT_EQ(encoded_size(no_slack) + 8, encoded_size(batch));
}

TEST(WireTest, SlackFlagOnNonReceiveThrows) {
  testing::EventFactory fac(2);
  auto bytes = encode_batch({fac.internal(0, 1.0)});
  bytes[1] |= 0x10;  // force the slack flag onto an internal record
  for (int i = 0; i < 8; ++i) bytes.push_back(0);
  EXPECT_THROW(decode_batch(bytes), WireError);
}

TEST(WireTest, NonCanonicalSlackThrows) {
  testing::EventFactory fac(2);
  const EventRecord s = fac.send(0, 1.0, 1);
  EventBatch batch{s, fac.receive(1, 2.0, s, 0.5)};
  const auto bytes = encode_batch(batch);
  // The slack double is the final 8 bytes of the last record.  Zero must
  // be spelled as "no flag", negatives and NaN never leave an encoder.
  for (const double bad : {0.0, -0.25,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    auto mutated = bytes;
    mutated.resize(mutated.size() - 8);
    put_double(mutated, bad);
    EXPECT_THROW(decode_batch(mutated), WireError);
  }
}

class WirePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WirePropertyTest, RandomBatchesRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) *
              std::uint64_t{2654435761} + 7);
  const std::size_t procs = 2 + rng.uniform_index(6);
  testing::EventFactory fac(procs);
  std::vector<EventRecord> sends;
  EventBatch batch;
  double t = 0.0;
  const std::size_t n = rng.uniform_index(200);
  for (std::size_t i = 0; i < n; ++i) {
    const ProcId p = static_cast<ProcId>(rng.uniform_index(procs));
    t += rng.uniform(0.0, 1.0);
    const double action = rng.next_double();
    if (action < 0.4) {
      ProcId q = static_cast<ProcId>(rng.uniform_index(procs));
      if (q == p) q = static_cast<ProcId>((q + 1) % procs);
      sends.push_back(fac.send(p, t, q));
      batch.push_back(sends.back());
    } else if (action < 0.6 && !sends.empty()) {
      const EventRecord s = sends[rng.uniform_index(sends.size())];
      // Half the receives carry a processing-slack annotation.
      const double slack =
          rng.next_double() < 0.5 ? rng.uniform(1e-6, 0.25) : 0.0;
      batch.push_back(fac.receive(s.peer, t, s, slack));
    } else {
      batch.push_back(fac.internal(p, t));
    }
  }
  const auto bytes = encode_batch(batch);
  EXPECT_EQ(bytes.size(), encoded_size(batch));
  EXPECT_EQ(decode_batch(bytes), batch);
}

INSTANTIATE_TEST_SUITE_P(RandomBatches, WirePropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace driftsync::wire
