// Tracer tests (DESIGN.md §8): ring-buffer semantics (wraparound, ordering,
// torn-read discipline under concurrent writers), deterministic trace-id
// minting, the byte-stable Chrome/Perfetto export, and end-to-end causal
// propagation across a 3-node ThreadHub network — the same id must appear
// on the sender's and the receiver's event streams.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "runtime/node.h"
#include "runtime/thread_transport.h"
#include "test_util.h"

namespace driftsync {
namespace {

using driftsync::testing::ThreeNodeNet;

/// Deterministic test clock: 1, 2, 3, ... seconds.
std::function<double()> counter_clock() {
  auto next = std::make_shared<double>(0.0);
  return [next] { return *next += 1.0; };
}

TEST(Tracer, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Tracer(1).capacity(), 8u);
  EXPECT_EQ(Tracer(8).capacity(), 8u);
  EXPECT_EQ(Tracer(9).capacity(), 16u);
  EXPECT_EQ(Tracer(4096).capacity(), 4096u);
}

TEST(Tracer, RecordsInOrderAndWrapsAround) {
  Tracer tracer(8, counter_clock());
  ASSERT_EQ(tracer.capacity(), 8u);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    tracer.record(TraceEventKind::kSend, i, 0, 1, static_cast<double>(i));
  }
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);

  // The ring keeps the newest capacity() events, oldest first.
  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].trace_id, 13 + i) << "index " << i;
    EXPECT_EQ(events[i].t, static_cast<double>(13 + i));
  }
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer(8);
  tracer.set_enabled(false);
  EXPECT_FALSE(tracer.enabled());
  tracer.record(TraceEventKind::kSend, 1, 0, 1);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
  tracer.set_enabled(true);
  tracer.record(TraceEventKind::kSend, 2, 0, 1);
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(Tracer, LastForFiltersByNodeAndKeepsOrder) {
  Tracer tracer(16, counter_clock());
  for (std::uint64_t i = 1; i <= 9; ++i) {
    tracer.record(TraceEventKind::kDeliver, i, static_cast<ProcId>(i % 3),
                  kInvalidProc);
  }
  const std::vector<TraceEvent> at1 = tracer.last_for(1, 2);
  ASSERT_EQ(at1.size(), 2u);
  EXPECT_EQ(at1[0].trace_id, 4u);  // ids 1, 4, 7 hit node 1; last two kept.
  EXPECT_EQ(at1[1].trace_id, 7u);
  EXPECT_TRUE(tracer.last_for(5, 4).empty());
}

TEST(Tracer, ConcurrentWritersNeverTearOrLoseCounts) {
  Tracer tracer(1024);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&tracer, &go, w] {
      while (!go.load()) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tracer.record(TraceEventKind::kSend, (static_cast<std::uint64_t>(w)
                                              << 32) |
                                                 (i + 1),
                      static_cast<ProcId>(w), 0);
      }
    });
  }
  go.store(true);
  // Readers run concurrently: snapshots may skip torn slots but must only
  // ever contain events some writer actually recorded.
  for (int r = 0; r < 50; ++r) {
    for (const TraceEvent& ev : tracer.snapshot()) {
      EXPECT_LT(ev.node, static_cast<ProcId>(kThreads));
      EXPECT_NE(ev.trace_id, 0u);
      EXPECT_LE(ev.trace_id & 0xffffffffULL, kPerThread);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(tracer.recorded(), kThreads * kPerThread);
  // A writer lapped mid-write can land its stale stamp after the newer
  // generation's, and the reader then (correctly) skips that slot.  Each
  // thread has at most one write in flight, so at most kThreads - 1 of the
  // final-window slots can be lost that way.
  const std::size_t n = tracer.snapshot().size();
  EXPECT_LE(n, tracer.capacity());
  EXPECT_GE(n, tracer.capacity() - (kThreads - 1));
}

TEST(MintTraceId, DeterministicNonzeroAndDistinct) {
  EXPECT_EQ(mint_trace_id(0, 1, 7), mint_trace_id(0, 1, 7));
  std::set<std::uint64_t> ids;
  for (ProcId from = 0; from < 4; ++from) {
    for (ProcId to = 0; to < 4; ++to) {
      for (std::uint64_t seq = 0; seq < 4; ++seq) {
        const std::uint64_t id = mint_trace_id(from, to, seq);
        EXPECT_NE(id, 0u);
        ids.insert(id);
      }
    }
  }
  EXPECT_EQ(ids.size(), 4u * 4u * 4u);
}

TEST(ChromeExport, GoldenJsonIsByteStable) {
  std::vector<TraceEvent> events(2);
  events[0].t = 1.0;
  events[0].trace_id = mint_trace_id(0, 1, 7);
  events[0].node = 0;
  events[0].peer = 1;
  events[0].kind = TraceEventKind::kSend;
  events[1].t = 2.0;
  events[1].trace_id = mint_trace_id(0, 1, 7);
  events[1].node = 1;
  events[1].peer = 0;
  events[1].kind = TraceEventKind::kDeliver;
  events[1].value = 0.5;

  const std::string expected =
      "{\"traceEvents\":["
      "{\"name\":\"send\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1000000,"
      "\"pid\":0,\"tid\":1,"
      "\"args\":{\"trace\":\"0x1000200000007\",\"value\":0}},"
      "{\"name\":\"deliver\",\"ph\":\"i\",\"s\":\"t\",\"ts\":2000000,"
      "\"pid\":1,\"tid\":0,"
      "\"args\":{\"trace\":\"0x1000200000007\",\"value\":0.5}}"
      "]}";
  EXPECT_EQ(trace_to_chrome_json(events), expected);
  // Byte-stable: rendering the same events twice is identical (the
  // determinism suite diffs whole documents).
  EXPECT_EQ(trace_to_chrome_json(events), trace_to_chrome_json(events));
  EXPECT_EQ(trace_to_chrome_json({}), "{\"traceEvents\":[]}");
}

TEST(ChromeExport, KindNamesAreStable) {
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kSend), "send");
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kDeliver), "deliver");
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kDrop), "drop");
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kRenounce), "renounce");
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kQuarantineEnter),
               "quarantine_enter");
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kQuarantineExit),
               "quarantine_exit");
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kSkipCommit),
               "skip_commit");
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kCheckpoint),
               "checkpoint");
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kExternalize),
               "externalize");
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kClientReq),
               "client_req");
  EXPECT_STREQ(trace_event_kind_name(TraceEventKind::kClientResp),
               "client_resp");
}

// ---------------------------------------------------------------------------
// End-to-end propagation: a minted id must cross the wire.

TEST(TraceIntegration, IdPropagatesAcrossThreeNodeNetwork) {
  // The tracer must outlive the net: the hub's worker thread records drops
  // until ~ThreeNodeNet joins it (TSan catches the reverse order as a
  // use-after-scope race).
  Tracer tracer(8192);
  ThreeNodeNet net;
  net.hub.set_tracer(&tracer);
  net.hub.set_link(0, 1, 0.0005, 0.003);
  net.hub.set_link(1, 2, 0.0005, 0.003);

  const double offsets[3] = {0.0, 17.0, -8.5};
  const double rates[3] = {1.0, 1.0 + 4e-4, 1.0 - 3e-4};
  std::vector<std::unique_ptr<runtime::Node>> nodes;
  for (ProcId p = 0; p < 3; ++p) {
    runtime::NodeConfig cfg = net.config(p);
    cfg.tracer = &tracer;
    nodes.push_back(net.make_node(std::move(cfg), offsets[p], rates[p]));
  }
  for (auto& node : nodes) node->start();
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  // Externalize an estimate on each node so the lifecycle event is traced.
  for (auto& node : nodes) (void)node->estimate();
  for (auto& node : nodes) node->stop();

  // Every delivered id was previously sent by a *different* node, and at
  // least one send/deliver pair exists for every link direction's sender.
  const std::vector<TraceEvent> events = tracer.snapshot();
  std::set<std::uint64_t> sent_ids;
  std::set<ProcId> paired_senders;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEventKind::kSend && ev.trace_id != 0) {
      sent_ids.insert(ev.trace_id);
    }
  }
  std::uint64_t deliveries = 0;
  for (const TraceEvent& ev : events) {
    if (ev.kind != TraceEventKind::kDeliver || ev.trace_id == 0) continue;
    ++deliveries;
    EXPECT_TRUE(sent_ids.count(ev.trace_id) > 0 || tracer.dropped() > 0)
        << "delivered id 0x" << std::hex << ev.trace_id
        << " never left any sender";
    // peer field names the sender; the deliver happened elsewhere.
    EXPECT_NE(ev.node, ev.peer);
    paired_senders.insert(ev.peer);
  }
  EXPECT_GT(deliveries, 0u);
  // Both middle-link directions carried traced traffic (0->1 and 1->0 at
  // minimum; 1<->2 too on any healthy run, but scheduling may starve it
  // in 800 ms, so only assert what is deterministic).
  EXPECT_GE(paired_senders.size(), 2u);
  // Externalize/checkpoint-style lifecycle events flow to the same buffer.
  bool saw_externalize = false;
  for (const TraceEvent& ev : events) {
    saw_externalize |= ev.kind == TraceEventKind::kExternalize;
  }
  EXPECT_TRUE(saw_externalize);
}

}  // namespace
}  // namespace driftsync
