// Trace-replay determinism suite (DESIGN.md §8): the chaos layer promises
// that its fault schedule is a pure function of the seed and the send
// sequence.  This suite locks that down end to end: a scripted, synchronous
// scenario is pushed through a seeded ChaosTransport twice, and the two
// runs must produce byte-identical Chrome trace documents, identical fault
// journals (modulo wall-clock timestamps), and identical delivery streams.
// A third test closes the accounting loop: the journal alone must predict
// the delivery count and reconcile with the ChaosEventLog counters, which
// is what lets a failing chaos run be replayed and diagnosed from its seed
// and journal.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/trace.h"
#include "runtime/chaos.h"
#include "runtime/datagram.h"
#include "runtime/transport.h"

namespace driftsync::runtime {
namespace {

/// Innermost transport: records every datagram the chaos layer lets
/// through, in delivery order.  No threads, no sockets — the scenario is
/// fully synchronous, so the only nondeterminism under test is the chaos
/// layer's own.
class CaptureTransport : public Transport {
 public:
  void start(DatagramHandler /*handler*/) override {}
  void stop() override {}
  void send(ProcId to, std::vector<std::uint8_t> bytes) override {
    delivered_.emplace_back(to, std::move(bytes));
  }

  [[nodiscard]] const std::vector<std::pair<ProcId, std::vector<std::uint8_t>>>&
  delivered() const {
    return delivered_;
  }

 private:
  std::vector<std::pair<ProcId, std::vector<std::uint8_t>>> delivered_;
};

/// Deterministic trace clock: 1, 2, 3, ... seconds.
std::function<double()> counter_clock() {
  auto next = std::make_shared<double>(0.0);
  return [next] { return *next += 1.0; };
}

struct RunResult {
  std::string trace_json;            ///< Chrome trace of the kDrop stream.
  std::vector<std::string> journal;  ///< Raw fault-journal lines.
  std::vector<std::pair<ProcId, std::vector<std::uint8_t>>> delivered;
  std::uint64_t injected = 0;
  std::uint64_t journal_total = 0;
  std::map<std::string, std::uint64_t> counts;
};

constexpr std::uint64_t kSends = 300;
const char* const kFaultKinds[] = {"partition-drop", "burst-drop", "drop",
                                   "corrupt",        "duplicate",  "hold",
                                   "reorder",        "hold-drop"};

/// One scripted scenario: kSends data datagrams from node 0, alternating
/// between peers 1 and 2, with a partition window against peer 2 in the
/// middle.  Every stochastic choice flows through the seeded Rng inside
/// ChaosTransport; everything else here is fixed.
RunResult run_scenario(std::uint64_t seed) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  EXPECT_NE(mem, nullptr);

  RunResult result;
  {
    ChaosEventLog log(mem);
    auto inner = std::make_unique<CaptureTransport>();
    CaptureTransport* capture = inner.get();
    ChaosFaults faults;
    faults.drop = 0.08;
    faults.burst = 0.01;
    faults.burst_len = 4;
    faults.corrupt = 0.05;
    faults.duplicate = 0.08;
    faults.reorder = 0.15;
    // Holds must never age out mid-run: steady_seconds() is the one
    // wall-clock input to the fault schedule, and a huge cap removes it.
    // The holds still alive at stop() decay into hold-drops, which IS
    // deterministic (it depends only on which sends were held).
    faults.max_hold = 1e9;
    ChaosTransport chaos(std::move(inner), /*self=*/0, faults, seed, &log);
    Tracer tracer(512, counter_clock());
    chaos.set_tracer(&tracer);

    std::map<ProcId, std::uint64_t> next_seq;
    for (std::uint64_t i = 0; i < kSends; ++i) {
      const ProcId to = 1 + static_cast<ProcId>(i % 2);
      if (i == 120) chaos.set_partitioned(2, true);
      if (i == 160) chaos.set_partitioned(2, false);
      DataMsg msg;
      msg.from = 0;
      msg.dgram_seq = ++next_seq[to];
      msg.app_tag = 1;
      msg.send_seq = static_cast<std::uint32_t>(i + 1);
      msg.send_lt = 0.001 * static_cast<double>(i);
      msg.trace_id = mint_trace_id(0, to, msg.dgram_seq);
      chaos.send(to, encode_datagram(msg));
    }
    chaos.stop();  // Flushes surviving holds as hold-drops.

    result.trace_json = trace_to_chrome_json(tracer.snapshot());
    result.delivered = capture->delivered();
    result.injected = chaos.injected();
    result.journal_total = log.total();
    for (const char* kind : kFaultKinds) result.counts[kind] = log.count(kind);
  }
  std::fclose(mem);
  std::string journal(buf, len);
  std::free(buf);
  for (std::size_t pos = 0; pos < journal.size();) {
    const std::size_t nl = journal.find('\n', pos);
    result.journal.push_back(journal.substr(pos, nl - pos));
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  return result;
}

/// Journal lines embed a steady-clock timestamp; determinism claims ignore
/// it.  Everything else in the line must match byte for byte.
std::string strip_time(const std::string& line) {
  const std::size_t start = line.find("\"t\":");
  if (start == std::string::npos) return line;
  const std::size_t end = line.find(',', start);
  return line.substr(0, start) + line.substr(end + 1);
}

TEST(TraceReplay, SameSeedSameStreams) {
  const RunResult a = run_scenario(0xc10c5);
  const RunResult b = run_scenario(0xc10c5);

  // The kDrop trace stream is byte-identical: same events, same order,
  // same counter-clock timestamps, same rendering.
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_NE(a.trace_json, "{\"traceEvents\":[]}");

  // The fault journal is identical modulo the wall-clock "t" field.
  ASSERT_EQ(a.journal.size(), b.journal.size());
  for (std::size_t i = 0; i < a.journal.size(); ++i) {
    EXPECT_EQ(strip_time(a.journal[i]), strip_time(b.journal[i]))
        << "journal line " << i;
  }

  // The delivery stream (destinations and payload bytes, in order) is
  // identical too — corruption flips the same bits in the same datagrams.
  ASSERT_EQ(a.delivered.size(), b.delivered.size());
  for (std::size_t i = 0; i < a.delivered.size(); ++i) {
    EXPECT_EQ(a.delivered[i].first, b.delivered[i].first) << "delivery " << i;
    EXPECT_EQ(a.delivered[i].second, b.delivered[i].second)
        << "delivery " << i;
  }
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(TraceReplay, DifferentSeedsDiverge) {
  const RunResult a = run_scenario(1);
  const RunResult b = run_scenario(2);
  // Two seeds agreeing on every fault draw over 300 sends would mean the
  // schedule is not actually seed-driven.
  EXPECT_NE(a.trace_json, b.trace_json);
}

TEST(TraceReplay, JournalPredictsDeliveriesAndMatchesCounters) {
  // Search nearby seeds for a run where every fault kind fires at least
  // once (hold-drop needs a hold still pending at stop(), which not every
  // seed produces).  The search is deterministic, and decoupling it from
  // one magic seed keeps the test valid if the Rng stream ever changes.
  RunResult run;
  bool complete = false;
  for (std::uint64_t seed = 0xfa117; !complete && seed < 0xfa117 + 64;
       ++seed) {
    run = run_scenario(seed);
    complete = true;
    for (const char* kind : kFaultKinds) {
      complete = complete && run.counts.at(kind) > 0;
    }
  }
  ASSERT_TRUE(complete) << "no seed in range exercised every fault kind";

  // Conservation: every send is delivered exactly once unless a drop-kind
  // fault consumed it, and duplicates add one extra delivery each.
  const std::uint64_t lost =
      run.counts.at("partition-drop") + run.counts.at("burst-drop") +
      run.counts.at("drop") + run.counts.at("hold-drop");
  EXPECT_EQ(run.delivered.size(),
            kSends + run.counts.at("duplicate") - lost);

  // Replay the journal: parse every line back and recount.  The journal
  // alone must reproduce the ChaosEventLog counters — that is what makes a
  // failing chaos run diagnosable offline.
  std::map<std::string, std::uint64_t> replayed;
  std::set<std::string> drop_traces;
  std::uint64_t lines = 0;
  for (const std::string& line : run.journal) {
    ++lines;
    const json::Value v = json::parse(line);
    const std::string& kind = v.at("chaos").as_string();
    ++replayed[kind];
    EXPECT_EQ(v.at("node").as_number(), 0.0);
    const std::string& trace = v.at("trace").as_string();
    EXPECT_EQ(trace.rfind("0x", 0), 0u) << line;
    if (kind == "partition-drop" || kind == "burst-drop" || kind == "drop" ||
        kind == "hold-drop") {
      // Every datagram-losing fault carried a real causal id: the scenario
      // traces every send, and corruption happens after the drop draws.
      EXPECT_NE(trace, "0x0") << line;
      drop_traces.insert(trace);
    }
  }
  for (const char* kind : kFaultKinds) {
    EXPECT_EQ(replayed[kind], run.counts.at(kind)) << kind;
  }
  // partition/heal markers account for the remaining journal lines.
  EXPECT_EQ(replayed["partition"], 1u);
  EXPECT_EQ(replayed["heal"], 1u);
  EXPECT_EQ(lines, run.journal_total);
  // injected() counts faults, not the partition/heal schedule markers.
  EXPECT_EQ(run.injected, run.journal_total - 2);

  // Cross-reference the Tracer: its kDrop stream names exactly the ids the
  // journal's drop-kind lines name.
  const json::Value doc = json::parse(run.trace_json);
  std::set<std::string> traced;
  for (const json::Value& ev : doc.at("traceEvents").as_array()) {
    EXPECT_EQ(ev.at("name").as_string(), "drop");
    traced.insert(ev.at("args").at("trace").as_string());
  }
  EXPECT_EQ(traced, drop_traces);
}

}  // namespace
}  // namespace driftsync::runtime
