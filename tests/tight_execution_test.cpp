// Unit tests for the Theorem 2.1 tight-execution constructions.
#include <gtest/gtest.h>

#include "core/tight_execution.h"
#include "test_util.h"

namespace driftsync {
namespace {

using testing::EventFactory;
using testing::line_spec;

TEST(TightExecutionTest, SingleMessagePairEndpoints) {
  const SystemSpec spec = line_spec(2, 0.0, 0.2, 1.0);
  View view(&spec);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 100.0, s);
  view.add(s);
  view.add(r);

  const RtAssignment hi = tight_assignment(view, s.id, /*maximize=*/true);
  const RtAssignment lo = tight_assignment(view, s.id, /*maximize=*/false);
  EXPECT_EQ(count_violations(view, hi), 0u);
  EXPECT_EQ(count_violations(view, lo), 0u);
  // Anchor keeps its own RT = LT.
  EXPECT_DOUBLE_EQ(hi.at(s.id), 10.0);
  EXPECT_DOUBLE_EQ(lo.at(s.id), 10.0);
  // The receive can happen as late as send + max, as early as send + min.
  EXPECT_DOUBLE_EQ(hi.at(r.id), 11.0);
  EXPECT_DOUBLE_EQ(lo.at(r.id), 10.2);
}

TEST(TightExecutionTest, DriftBoundsRealized) {
  const SystemSpec spec = line_spec(2, 0.01, 0.0, 5.0);
  View view(&spec);
  EventFactory fac(2);
  // One received message keeps the graph strongly connected (finite
  // distances); the anchor is the receive, so the message constraint cannot
  // bind the a -> b stretch.
  const EventRecord s = fac.send(0, 0.0, 1);
  const EventRecord a = fac.receive(1, 0.0, s);
  const EventRecord b = fac.internal(1, 100.0);
  view.add(s);
  view.add(a);
  view.add(b);
  const RtAssignment hi = tight_assignment(view, a.id, /*maximize=*/true);
  const RtAssignment lo = tight_assignment(view, a.id, /*maximize=*/false);
  EXPECT_EQ(count_violations(view, hi), 0u);
  EXPECT_EQ(count_violations(view, lo), 0u);
  // 100 local seconds stretch to at most 100/(1-rho), shrink to 100/(1+rho).
  EXPECT_NEAR(hi.at(b.id) - hi.at(a.id), 100.0 / 0.99, 1e-9);
  EXPECT_NEAR(lo.at(b.id) - lo.at(a.id), 100.0 / 1.01, 1e-9);
}

TEST(TightExecutionTest, AnchorOffsetShiftsEverything) {
  const SystemSpec spec = line_spec(2, 0.0, 0.0, 1.0);
  View view(&spec);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 1.0, 1);
  const EventRecord r = fac.receive(1, 2.0, s);
  view.add(s);
  view.add(r);
  const RtAssignment base = tight_assignment(view, s.id, true, 0.0);
  const RtAssignment shifted = tight_assignment(view, s.id, true, 7.0);
  for (const auto& [id, rt] : base) {
    EXPECT_DOUBLE_EQ(shifted.at(id), rt + 7.0);
  }
}

TEST(TightExecutionTest, UnknownAnchorThrows) {
  const SystemSpec spec = line_spec(2, 0.0, 0.0, 1.0);
  View view(&spec);
  EXPECT_THROW(tight_assignment(view, EventId{0, 0}, true),
               std::logic_error);
}

TEST(TightExecutionTest, InfiniteDistanceThrows) {
  // Unbounded link: no finite distance from the receive back to the send.
  const SystemSpec spec = line_spec(2, 0.0, 0.0, kNoBound);
  View view(&spec);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 1.0, 1);
  const EventRecord r = fac.receive(1, 2.0, s);
  view.add(s);
  view.add(r);
  EXPECT_THROW(tight_assignment(view, s.id, /*maximize=*/true),
               std::logic_error);
}

TEST(TightExecutionTest, ViolationCounterDetectsBadAssignments) {
  const SystemSpec spec = line_spec(2, 0.0, 0.2, 1.0);
  View view(&spec);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 100.0, s);
  view.add(s);
  view.add(r);
  RtAssignment bad;
  bad[s.id] = 10.0;
  bad[r.id] = 10.1;  // transit below the declared minimum of 0.2
  EXPECT_GT(count_violations(view, bad), 0u);
}

}  // namespace
}  // namespace driftsync
