// Tests for the comparator CSAs: the full-view oracle's bookkeeping, the
// interval (drift-free + fudge) algorithm, NTP, and Cristian.  All four are
// *correct* interval algorithms — their estimates must always contain the
// true source time — which is what makes the width comparisons of the
// experiment harnesses meaningful.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/cristian_csa.h"
#include "baselines/full_view_csa.h"
#include "baselines/interval_csa.h"
#include "baselines/ntp_csa.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workloads/apps.h"
#include "workloads/scenario.h"
#include "workloads/topology.h"

namespace driftsync {
namespace {

using testing::line_spec;
using workloads::Network;
using workloads::TopoParams;

// ------------------------------------------------------------ IntervalCsa

TEST(IntervalCsaTest, UnsynchronizedIsEverything) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.01, 0.05);
  IntervalCsa csa;
  csa.init(spec, 1);
  EXPECT_EQ(csa.estimate(123.0), Interval::everything());
}

TEST(IntervalCsaTest, SourcePinsPhiToZero) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.01, 0.05);
  IntervalCsa csa;
  csa.init(spec, 0);
  EXPECT_TRUE(intervals_close(csa.estimate(42.0), Interval::point(42.0)));
}

TEST(IntervalCsaTest, OneMessageFromSourceGivesTransitWidth) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.01, 0.05);
  IntervalCsa source;
  IntervalCsa client;
  source.init(spec, 0);
  client.init(spec, 1);

  testing::EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  SendContext sctx{0, 1, s, 0};
  const CsaPayload payload = source.on_send(sctx);
  const EventRecord r = fac.receive(1, 500.0, s);
  RecvContext rctx{1, 0, r, s, 0};
  client.on_receive(rctx, payload);
  // phi in [10 + 0.01 - 500, 10 + 0.05 - 500]: width = transit slack.
  const Interval est = client.estimate(500.0);
  EXPECT_NEAR(est.width(), 0.04, 1e-9);
  EXPECT_NEAR(est.lo, 10.01, 1e-9);
}

TEST(IntervalCsaTest, WidthGrowsWithDrift) {
  const SystemSpec spec = line_spec(2, 1e-3, 0.01, 0.05);
  IntervalCsa source, client;
  source.init(spec, 0);
  client.init(spec, 1);
  testing::EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const CsaPayload payload = source.on_send(SendContext{0, 1, s, 0});
  const EventRecord r = fac.receive(1, 500.0, s);
  client.on_receive(RecvContext{1, 0, r, s, 0}, payload);
  const double w0 = client.estimate(500.0).width();
  const double w1 = client.estimate(600.0).width();
  EXPECT_NEAR(w1 - w0, 100.0 * (1e-3 / 0.999 + 1e-3 / 1.001), 1e-9);
}

TEST(IntervalCsaTest, FudgeEpochIsCoarserButCorrect) {
  // Same exchange; the epoch variant must be at least as wide as the
  // continuous variant at any later read.
  const SystemSpec spec = line_spec(2, 1e-3, 0.01, 0.05);
  IntervalCsa cont(0.0);
  IntervalCsa fudge(50.0);
  cont.init(spec, 1);
  fudge.init(spec, 1);
  IntervalCsa source;
  source.init(spec, 0);
  testing::EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const CsaPayload payload = source.on_send(SendContext{0, 1, s, 0});
  const EventRecord r = fac.receive(1, 500.0, s);
  cont.on_receive(RecvContext{1, 0, r, s, 0}, payload);
  fudge.on_receive(RecvContext{1, 0, r, s, 0}, payload);
  for (const double t : {500.0, 520.0, 560.0, 700.0}) {
    EXPECT_GE(fudge.estimate(t).width(), cont.estimate(t).width() - 1e-12);
  }
}

TEST(IntervalCsaTest, IntersectionTightens) {
  const SystemSpec spec = line_spec(2, 0.0, 0.0, 1.0);
  IntervalCsa source, client;
  source.init(spec, 0);
  client.init(spec, 1);
  testing::EventFactory fac(2);
  // Two messages with different transits: intersect.
  const EventRecord s1 = fac.send(0, 10.0, 1);
  const CsaPayload p1 = source.on_send(SendContext{0, 1, s1, 0});
  const EventRecord r1 = fac.receive(1, 100.0, s1);
  client.on_receive(RecvContext{1, 0, r1, s1, 0}, p1);
  EXPECT_NEAR(client.estimate(100.0).width(), 1.0, 1e-9);
  const EventRecord s2 = fac.send(0, 10.4, 1);
  const CsaPayload p2 = source.on_send(SendContext{0, 1, s2, 0});
  const EventRecord r2 = fac.receive(1, 100.5, s2);  // vd 90.1 vs 90 before
  client.on_receive(RecvContext{1, 0, r2, s2, 0}, p2);
  // New constraint phi in [10.4-100.5, 11.4-100.5]=[-90.1,-89.1];
  // old [-90,-89]: intersect -> [-90,-89.1], width 0.9.
  EXPECT_NEAR(client.estimate(100.5).width(), 0.9, 1e-9);
}

// ------------------------------------------------- sim-level containment

struct ContainmentObserver : sim::SimObserver {
  void on_probe(sim::Simulator& sim, RealTime rt) override {
    for (ProcId p = 0; p < sim.spec().num_procs(); ++p) {
      const LocalTime lt = sim.clock(p).lt_at(rt);
      for (std::size_t c = 0; c < sim.csa_count(p); ++c) {
        const Interval est = sim.csa(p, c).estimate(lt);
        EXPECT_TRUE(est.contains(rt))
            << sim.csa(p, c).name() << " violated containment at proc " << p
            << " rt=" << rt << " est=" << est.str();
        if (est.bounded()) ++bounded;
      }
    }
  }
  int bounded = 0;
};

void run_containment(const Network& net, std::uint64_t seed,
                     bool adaptive_probing, RealTime duration,
                     int min_bounded) {
  sim::SimConfig cfg;
  cfg.seed = seed;
  cfg.probe_interval = 0.25;
  sim::Simulator simulator(net.spec, net.links, cfg);
  Rng rng(seed + 1);
  for (ProcId p = 0; p < net.spec.num_procs(); ++p) {
    std::vector<std::unique_ptr<Csa>> csas;
    csas.push_back(std::make_unique<CristianCsa>());
    csas.push_back(std::make_unique<NtpCsa>());
    csas.push_back(std::make_unique<IntervalCsa>());
    csas.push_back(std::make_unique<IntervalCsa>(30.0));
    const double rho = net.spec.clock(p).rho;
    sim::ClockModel clock =
        p == net.spec.source()
            ? sim::ClockModel::constant(0.0, 1.0)
            : sim::ClockModel::constant(rng.uniform(-20.0, 20.0),
                                        1.0 + rng.uniform(-rho, rho));
    workloads::ProbeApp::Config pc;
    pc.upstreams = net.upstreams[p];
    pc.period = 0.5;
    pc.adaptive = adaptive_probing;
    pc.width_target = 0.05;
    pc.burst_gap = 0.05;
    simulator.attach_node(p, std::move(clock),
                          std::make_unique<workloads::ProbeApp>(pc),
                          std::move(csas));
  }
  ContainmentObserver obs;
  simulator.set_observer(&obs);
  simulator.run_until(duration);
  EXPECT_GE(obs.bounded, min_bounded);
}

TEST(BaselineContainmentTest, PeriodicProbingStar) {
  TopoParams params;
  params.rho = 200e-6;
  params.latency = sim::LatencyModel::uniform(0.002, 0.02);
  run_containment(workloads::make_star(5, params), 11, false, 15.0, 200);
}

TEST(BaselineContainmentTest, PeriodicProbingHierarchy) {
  TopoParams params;
  params.rho = 100e-6;
  params.latency = sim::LatencyModel::uniform(0.001, 0.03);
  run_containment(workloads::make_ntp_hierarchy({2, 4}, 2, false, 3, params),
                  12, false, 15.0, 300);
}

TEST(BaselineContainmentTest, AdaptiveProbingHeavyTail) {
  TopoParams params;
  params.rho = 100e-6;
  params.latency = sim::LatencyModel::bimodal(0.001, 0.004, 0.05, 0.2, 0.25);
  run_containment(workloads::make_star(4, params), 13, true, 15.0, 100);
}

// --------------------------------------------------------------- NtpCsa

TEST(NtpCsaTest, StartsUnsynchronized) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.001, 0.05);
  NtpCsa csa;
  csa.init(spec, 1);
  EXPECT_FALSE(csa.synchronized());
  EXPECT_EQ(csa.estimate(0.0), Interval::everything());
}

TEST(NtpCsaTest, SourceIsStratumZero) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.001, 0.05);
  NtpCsa csa;
  csa.init(spec, 0);
  EXPECT_TRUE(csa.synchronized());
  EXPECT_EQ(csa.stratum(), 0);
  EXPECT_TRUE(intervals_close(csa.estimate(9.0), Interval::point(9.0)));
}

TEST(NtpCsaTest, SymmetricExchangeRecoversOffset) {
  const SystemSpec spec = line_spec(2, 0.0, 0.0, 1.0);
  NtpCsa server, client;
  server.init(spec, 0);
  client.init(spec, 1);
  testing::EventFactory fac(2);
  // Client clock = source + 100.  Request at client 110 (source 10),
  // transit 0.2; server receives at 10.2; replies at 10.3; transit 0.2;
  // client receives at 110.5.
  const EventRecord probe = fac.send(1, 110.0, 0);
  client.on_send(SendContext{1, 0, probe, kProbeTag});
  const EventRecord preq = fac.receive(0, 10.2, probe);
  server.on_receive(RecvContext{0, 1, preq, probe, kProbeTag}, {});
  const EventRecord resp = fac.send(0, 10.3, 1);
  const CsaPayload payload =
      server.on_send(SendContext{0, 1, resp, kResponseTag});
  const EventRecord rresp = fac.receive(1, 110.5, resp);
  client.on_receive(RecvContext{1, 0, rresp, resp, kResponseTag}, payload);
  ASSERT_TRUE(client.synchronized());
  EXPECT_EQ(client.stratum(), 1);
  // theta = ((10.2-110)+(10.3-110.5))/2 = -100 exactly for symmetric legs.
  const Interval est = client.estimate(110.5);
  EXPECT_NEAR(est.midpoint(), 10.5, 1e-9);
  EXPECT_TRUE(est.contains(10.5));
}

TEST(NtpCsaTest, IgnoresResponsesWithoutPendingRequest) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 1.0);
  NtpCsa server;
  server.init(spec, 0);
  testing::EventFactory fac(2);
  const EventRecord resp = fac.send(0, 1.0, 1);
  const CsaPayload payload =
      server.on_send(SendContext{0, 1, resp, kResponseTag});
  EXPECT_TRUE(payload.scalars.empty());  // no request to answer
}

TEST(NtpCsaTest, UnsynchronizedServerDoesNotPoison) {
  const SystemSpec spec = line_spec(3, 1e-4, 0.0, 1.0);
  NtpCsa middle, client;
  middle.init(spec, 1);  // not the source; knows nothing
  client.init(spec, 2);
  testing::EventFactory fac(3);
  const EventRecord probe = fac.send(2, 5.0, 1);
  client.on_send(SendContext{2, 1, probe, kProbeTag});
  const EventRecord preq = fac.receive(1, 7.0, probe);
  middle.on_receive(RecvContext{1, 2, preq, probe, kProbeTag}, {});
  const EventRecord resp = fac.send(1, 7.1, 2);
  const CsaPayload payload =
      middle.on_send(SendContext{1, 2, resp, kResponseTag});
  const EventRecord rresp = fac.receive(2, 5.4, resp);
  client.on_receive(RecvContext{2, 1, rresp, resp, kResponseTag}, payload);
  EXPECT_FALSE(client.synchronized());
}

// ------------------------------------------------------------ CristianCsa

TEST(CristianCsaTest, RoundTripProducesBoundedEstimate) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.01, kNoBound);
  CristianCsa server, client;
  server.init(spec, 0);
  client.init(spec, 1);
  testing::EventFactory fac(2);
  const EventRecord probe = fac.send(1, 200.0, 0);
  client.on_send(SendContext{1, 0, probe, kProbeTag});
  const EventRecord preq = fac.receive(0, 50.02, probe);
  server.on_receive(RecvContext{0, 1, preq, probe, kProbeTag}, {});
  const EventRecord resp = fac.send(0, 50.03, 1);
  const CsaPayload payload =
      server.on_send(SendContext{0, 1, resp, kResponseTag});
  const EventRecord rresp = fac.receive(1, 200.05, resp);
  client.on_receive(RecvContext{1, 0, rresp, resp, kResponseTag}, payload);
  ASSERT_TRUE(client.synchronized());
  const Interval est = client.estimate(200.05);
  EXPECT_TRUE(est.bounded());
  // True source time at receive = 50.05 (transit 0.02 + hold + 0.02).
  EXPECT_TRUE(est.contains(50.05));
  // Width ~ rtt - 2l = 0.05 - 0.02 = 0.03 (plus drift epsilon).
  EXPECT_NEAR(est.width(), 0.03, 1e-3);
}

TEST(CristianCsaTest, DiscardsSlowRoundTrips) {
  CristianCsa::Options opts;
  opts.rtt_threshold = 0.04;
  const SystemSpec spec = line_spec(2, 1e-4, 0.01, kNoBound);
  CristianCsa server, client(opts);
  server.init(spec, 0);
  client.init(spec, 1);
  testing::EventFactory fac(2);
  const EventRecord probe = fac.send(1, 200.0, 0);
  client.on_send(SendContext{1, 0, probe, kProbeTag});
  const EventRecord preq = fac.receive(0, 50.05, probe);
  server.on_receive(RecvContext{0, 1, preq, probe, kProbeTag}, {});
  const EventRecord resp = fac.send(0, 50.06, 1);
  const CsaPayload payload =
      server.on_send(SendContext{0, 1, resp, kResponseTag});
  const EventRecord rresp = fac.receive(1, 200.11, resp);  // rtt 0.11 > 0.04
  client.on_receive(RecvContext{1, 0, rresp, resp, kResponseTag}, payload);
  EXPECT_FALSE(client.synchronized());
}

TEST(CristianCsaTest, KeepsBetterSample) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.01, kNoBound);
  CristianCsa server, client;
  server.init(spec, 0);
  client.init(spec, 1);
  testing::EventFactory fac(2);
  const auto exchange = [&](double t_probe, double t_req, double t_resp,
                            double t_rresp) {
    const EventRecord probe = fac.send(1, t_probe, 0);
    client.on_send(SendContext{1, 0, probe, kProbeTag});
    const EventRecord preq = fac.receive(0, t_req, probe);
    server.on_receive(RecvContext{0, 1, preq, probe, kProbeTag}, {});
    const EventRecord resp = fac.send(0, t_resp, 1);
    const CsaPayload payload =
        server.on_send(SendContext{0, 1, resp, kResponseTag});
    const EventRecord rresp = fac.receive(1, t_rresp, resp);
    client.on_receive(RecvContext{1, 0, rresp, resp, kResponseTag}, payload);
  };
  exchange(200.0, 50.1, 50.11, 200.21);  // rtt 0.21
  ASSERT_TRUE(client.synchronized());
  const double wide = client.estimate(200.21).width();
  exchange(201.0, 51.02, 51.03, 201.05);  // rtt 0.05: better
  const double narrow = client.estimate(201.05).width();
  EXPECT_LT(narrow, wide);
  exchange(202.0, 52.2, 52.21, 202.41);  // worse: must be ignored
  EXPECT_NEAR(client.estimate(202.41).width(),
              narrow + 1.36 * (1e-4 / 0.9999 + 1e-4 / 1.0001), 1e-6);
}

// --------------------------------------------------------- FullViewCsa

TEST(FullViewCsaTest, StatsReflectViewGrowth) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 1.0);
  FullViewCsa a, b;
  a.init(spec, 0);
  b.init(spec, 1);
  testing::EventFactory fac(2);
  const EventRecord s = fac.send(0, 1.0, 1);
  const CsaPayload p = a.on_send(SendContext{0, 1, s, 0});
  EXPECT_EQ(p.reports.size(), 1u);
  const EventRecord r = fac.receive(1, 1.5, s);
  b.on_receive(RecvContext{1, 0, r, s, 0}, p);
  EXPECT_EQ(b.stats().history_events, 2u);
  // The oracle's payload grows with the whole view: wasteful by design.
  const EventRecord s2 = fac.send(1, 2.0, 0);
  const CsaPayload p2 = b.on_send(SendContext{1, 0, s2, 0});
  EXPECT_EQ(p2.reports.size(), 3u);
}

}  // namespace
}  // namespace driftsync
