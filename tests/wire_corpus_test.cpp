// Golden corpus of hand-built malformed wire buffers: every rejection path
// of the untrusted-input layer must throw the *typed* recoverable error
// (WireError / CheckpointError, common/errors.h), never the DS_CHECK
// std::logic_error reserved for internal invariant violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <type_traits>
#include <variant>

#include "common/errors.h"
#include "common/trace.h"
#include "core/sync_engine.h"
#include "core/wire.h"
#include "runtime/datagram.h"
#include "test_util.h"

namespace driftsync::wire {
namespace {

using Bytes = std::vector<std::uint8_t>;

// The taxonomy itself: recoverable input errors are runtime errors, share
// the DecodeError base, and are disjoint from the invariant hierarchy.
static_assert(std::is_base_of_v<std::runtime_error, DecodeError>);
static_assert(std::is_base_of_v<DecodeError, WireError>);
static_assert(std::is_base_of_v<DecodeError, CheckpointError>);
static_assert(!std::is_base_of_v<std::logic_error, DecodeError>);

/// A batch exercising every record shape: internal, send, receive (match
/// refs), loss declaration, proc/seq delta flags and explicit fields.
EventBatch rich_batch() {
  testing::EventFactory fac(4);
  EventBatch batch;
  batch.push_back(fac.internal(2, 1.5));
  const EventRecord s = fac.send(0, 2.25, 3);
  batch.push_back(s);
  batch.push_back(fac.receive(3, 3.75, s));
  batch.push_back(fac.internal(3, 4.5));
  const EventRecord s2 = fac.send(0, 5.0, 1);
  batch.push_back(s2);
  batch.push_back(fac.loss_decl(0, 6.0, s2));
  return batch;
}

TEST(WireCorpusTest, TruncationAtEveryFieldBoundary) {
  const Bytes bytes = encode_batch(rich_batch());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(decode_batch(prefix), WireError) << "cut=" << cut;
  }
  EXPECT_EQ(decode_batch(bytes), rich_batch());  // the full buffer is fine
}

TEST(WireCorpusTest, OverLongVarintRejected) {
  // 0 and 1 each have a one-byte canonical encoding; the two-byte spellings
  // below decode to the same values and must be rejected.
  for (const Bytes& buf : {Bytes{0x80, 0x00}, Bytes{0x81, 0x00}}) {
    std::size_t offset = 0;
    EXPECT_THROW(get_varint(buf, offset), WireError);
  }
}

TEST(WireCorpusTest, VarintOverflowRejected) {
  // Ten bytes whose final byte carries payload above bit 63.
  Bytes buf(9, 0xff);
  buf.push_back(0x02);
  std::size_t offset = 0;
  EXPECT_THROW(get_varint(buf, offset), WireError);
  // Eleven-byte encoding: the tenth byte still has the continuation bit.
  Bytes eleven(10, 0xff);
  eleven.push_back(0x01);
  offset = 0;
  EXPECT_THROW(get_varint(eleven, offset), WireError);
}

TEST(WireCorpusTest, MaxVarintStillRoundTrips) {
  Bytes buf;
  put_varint(buf, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
  std::size_t offset = 0;
  EXPECT_EQ(get_varint(buf, offset), std::numeric_limits<std::uint64_t>::max());
}

TEST(WireCorpusTest, ImplausibleCountRejected) {
  // A count prefix promising far more records than the buffer could hold
  // must be rejected before any allocation is sized from it.
  Bytes buf;
  put_varint(buf, 1000);
  EXPECT_THROW(decode_batch(buf), WireError);
  // Plausible count, but the second record (a send) is cut off before its
  // peer field: truncated mid-record.
  Bytes two;
  put_varint(two, 2);
  two.push_back(0x02);       // internal, explicit proc+seq
  put_varint(two, 0);        // proc
  put_varint(two, 0);        // seq
  put_double(two, 1.0);      // lt
  two.push_back(0x0c);       // send, same proc, next seq
  put_double(two, 2.0);      // lt; peer varint missing
  EXPECT_THROW(decode_batch(two), WireError);
}

Bytes single_internal_with_lt(double lt) {
  Bytes buf;
  put_varint(buf, 1);
  buf.push_back(0x02);  // kInternal, explicit proc and seq
  put_varint(buf, 0);   // proc
  put_varint(buf, 0);   // seq
  put_double(buf, lt);
  return buf;
}

TEST(WireCorpusTest, NonFiniteLocalTimeRejected) {
  for (const double lt : {std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()}) {
    EXPECT_THROW(decode_batch(single_internal_with_lt(lt)), WireError);
  }
  EXPECT_EQ(decode_batch(single_internal_with_lt(1.25)).size(), 1u);
}

TEST(WireCorpusTest, UnknownFlagBitsRejected) {
  Bytes buf = single_internal_with_lt(1.0);
  buf[1] = 0x12;  // reserved bit 4 set
  EXPECT_THROW(decode_batch(buf), WireError);
}

TEST(WireCorpusTest, RedundantExplicitProcRejected) {
  // Two records of processor 3, the second spelling the proc explicitly
  // instead of using the delta flag: decodes to the same batch as the
  // canonical form, so it must be rejected to keep decode injective.
  Bytes buf;
  put_varint(buf, 2);
  buf.push_back(0x02);
  put_varint(buf, 3);
  put_varint(buf, 0);
  put_double(buf, 1.0);
  buf.push_back(0x02);  // missing kSameProc
  put_varint(buf, 3);
  EXPECT_THROW(decode_batch(buf), WireError);
}

TEST(WireCorpusTest, RedundantExplicitSeqRejected) {
  // proc 0, then proc 1, then proc 0 again with the explicit sequence
  // number the kNextSeq flag would have produced.
  Bytes buf;
  put_varint(buf, 3);
  buf.push_back(0x02);
  put_varint(buf, 0);
  put_varint(buf, 0);
  put_double(buf, 1.0);
  buf.push_back(0x02);
  put_varint(buf, 1);
  put_varint(buf, 0);
  put_double(buf, 2.0);
  buf.push_back(0x02);  // missing kNextSeq
  put_varint(buf, 0);
  put_varint(buf, 1);
  put_double(buf, 3.0);
  EXPECT_THROW(decode_batch(buf), WireError);
}

TEST(WireCorpusTest, DanglingDeltaFlagsRejected) {
  // kSameProc on the first record: no previous processor to inherit.
  Bytes same;
  put_varint(same, 1);
  same.push_back(0x06);
  put_varint(same, 0);
  put_double(same, 1.0);
  EXPECT_THROW(decode_batch(same), WireError);
  // kNextSeq for a processor with no previous record.
  Bytes next;
  put_varint(next, 1);
  next.push_back(0x0a);
  put_varint(next, 0);
  put_double(next, 1.0);
  EXPECT_THROW(decode_batch(next), WireError);
}

TEST(WireCorpusTest, OutOfRangeIdsRejected) {
  // The invalid-processor sentinel as a record's processor id.
  Bytes sentinel;
  put_varint(sentinel, 1);
  sentinel.push_back(0x02);
  put_varint(sentinel, kInvalidProc);
  put_varint(sentinel, 0);
  put_double(sentinel, 1.0);
  EXPECT_THROW(decode_batch(sentinel), WireError);
  // A processor id that does not fit 32 bits.
  Bytes wide;
  put_varint(wide, 1);
  wide.push_back(0x02);
  put_varint(wide, std::uint64_t{1} << 32);
  put_varint(wide, 0);
  put_double(wide, 1.0);
  EXPECT_THROW(decode_batch(wide), WireError);
  // A sequence number that does not fit 32 bits.
  Bytes wide_seq;
  put_varint(wide_seq, 1);
  wide_seq.push_back(0x02);
  put_varint(wide_seq, 0);
  put_varint(wide_seq, std::uint64_t{1} << 32);
  put_double(wide_seq, 1.0);
  EXPECT_THROW(decode_batch(wide_seq), WireError);
}

TEST(WireCorpusTest, TrailingBytesRejected) {
  Bytes buf = single_internal_with_lt(1.0);
  buf.push_back(0x00);
  EXPECT_THROW(decode_batch(buf), WireError);
}

// ---------------------------------------------------------------------------
// Datagram trace-id extension block (runtime/datagram.h).  The block is
// optional — absent means untraced — so the canonical-encoding rule needs
// its own corpus: an attacker must not be able to spell the same DataMsg
// two ways, and pre-extension encoders must interoperate unchanged.

runtime::DataMsg traced_data_msg(std::uint64_t trace_id) {
  runtime::DataMsg m;
  m.from = 2;
  m.dgram_seq = 9;
  m.processed_hw = 4;
  m.seen_hw = 6;
  m.app_tag = 1;
  m.send_seq = 17;
  m.send_lt = 3.25;
  m.trace_id = trace_id;
  return m;
}

TEST(WireCorpusTest, TraceExtensionIsOptionalAndOldEncodingsRoundTrip) {
  const runtime::DataMsg untraced = traced_data_msg(0);
  const runtime::DataMsg traced = traced_data_msg(mint_trace_id(2, 0, 9));
  const Bytes old_form = runtime::encode_datagram(untraced);
  const Bytes new_form = runtime::encode_datagram(traced);

  // A pre-extension encoder produces exactly old_form; it must decode to
  // the untraced message, and the traced encoding is a strict extension of
  // it (same prefix, flags byte + varint appended).
  EXPECT_EQ(std::get<runtime::DataMsg>(runtime::decode_datagram(old_form)),
            untraced);
  ASSERT_GT(new_form.size(), old_form.size());
  EXPECT_TRUE(std::equal(old_form.begin(), old_form.end(), new_form.begin()));
  EXPECT_EQ(std::get<runtime::DataMsg>(runtime::decode_datagram(new_form)),
            traced);
}

TEST(WireCorpusTest, TraceExtensionTruncationRejectedEverywhere) {
  const std::size_t base_size =
      runtime::encode_datagram(traced_data_msg(0)).size();
  const Bytes bytes =
      runtime::encode_datagram(traced_data_msg(mint_trace_id(2, 0, 9)));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    // Most prefixes truncate a field; the one ending exactly where the
    // extension block begins decodes as a valid untraced message.
    if (cut == base_size) {
      EXPECT_EQ(std::get<runtime::DataMsg>(runtime::decode_datagram(prefix))
                    .trace_id,
                0u);
      continue;
    }
    EXPECT_THROW(runtime::decode_datagram(prefix), WireError) << "cut=" << cut;
  }
}

TEST(WireCorpusTest, DuplicatedTraceExtensionRejected) {
  const std::size_t base_size =
      runtime::encode_datagram(traced_data_msg(0)).size();
  Bytes bytes =
      runtime::encode_datagram(traced_data_msg(mint_trace_id(2, 0, 9)));
  // Append a second copy of the extension block (flags byte + id varint):
  // the first block's decode consumes the buffer tail, so the duplicate is
  // trailing garbage.
  const Bytes block(bytes.begin() + static_cast<std::ptrdiff_t>(base_size),
                    bytes.end());
  bytes.insert(bytes.end(), block.begin(), block.end());
  EXPECT_THROW(runtime::decode_datagram(bytes), WireError);
}

TEST(WireCorpusTest, TraceExtensionFlagAbuseRejected) {
  const Bytes base = runtime::encode_datagram(traced_data_msg(0));

  // flags == 0 spells "no extensions", whose canonical form is omission.
  Bytes empty_flags = base;
  empty_flags.push_back(0x00);
  EXPECT_THROW(runtime::decode_datagram(empty_flags), WireError);

  // Reserved flag bits: the decoder cannot size fields it does not know.
  for (const std::uint8_t flags :
       {std::uint8_t{0x02}, std::uint8_t{0x03}, std::uint8_t{0x80}}) {
    Bytes unknown = base;
    unknown.push_back(flags);
    put_varint(unknown, 1);
    EXPECT_THROW(runtime::decode_datagram(unknown), WireError)
        << "flags=" << int{flags};
  }

  // A zero trace id must be encoded by omitting the block entirely.
  Bytes zero_id = base;
  zero_id.push_back(0x01);
  put_varint(zero_id, 0);
  EXPECT_THROW(runtime::decode_datagram(zero_id), WireError);

  // Over-long varint spelling of a small id: non-canonical, rejected.
  Bytes overlong = base;
  overlong.push_back(0x01);
  overlong.push_back(0x81);
  overlong.push_back(0x00);
  EXPECT_THROW(runtime::decode_datagram(overlong), WireError);
}

// ---------------------------------------------------------------------------
// Serving-tier datagrams (ClientReq / ClientResp).  These arrive from
// arbitrary internet clients — the least trusted input surface of the
// system — so every field's rejection path gets a golden case.

/// Hand-spelled ClientReq: header + varints + doubles in wire order.
Bytes client_req_bytes(std::uint64_t client_id, std::uint64_t req_seq,
                       double client_lt, double last_rtt) {
  Bytes b{'D', 'S', 1, 7};
  put_varint(b, client_id);
  put_varint(b, req_seq);
  put_double(b, client_lt);
  put_double(b, last_rtt);
  return b;
}

/// Hand-spelled ClientResp, same discipline.
Bytes client_resp_bytes(std::uint64_t client_id, std::uint64_t req_seq,
                        double echo_lt, std::uint64_t from, double server_lt,
                        double lo, double hi) {
  Bytes b{'D', 'S', 1, 8};
  put_varint(b, client_id);
  put_varint(b, req_seq);
  put_double(b, echo_lt);
  put_varint(b, from);
  put_double(b, server_lt);
  put_double(b, lo);
  put_double(b, hi);
  return b;
}

TEST(WireCorpusTest, ClientReqRoundTripsAndRejectsTruncation) {
  runtime::ClientReq req;
  req.client_id = 0xfeedu;
  req.req_seq = 3;
  req.client_lt = 12.5;
  req.last_rtt = 0.004;
  const Bytes bytes = runtime::encode_datagram(req);
  EXPECT_EQ(bytes, client_req_bytes(0xfeedu, 3, 12.5, 0.004));
  EXPECT_EQ(std::get<runtime::ClientReq>(runtime::decode_datagram(bytes)),
            req);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(runtime::decode_datagram(prefix), WireError) << "cut=" << cut;
  }
  Bytes trailing = bytes;
  trailing.push_back(0x00);
  EXPECT_THROW(runtime::decode_datagram(trailing), WireError);
}

TEST(WireCorpusTest, ClientRespRoundTripsAndRejectsTruncation) {
  runtime::ClientResp resp;
  resp.client_id = 7;
  resp.req_seq = 1;
  resp.echo_lt = 12.5;
  resp.from = 2;
  resp.server_lt = 99.75;
  resp.lo = 99.0;
  resp.hi = 100.0;
  const Bytes bytes = runtime::encode_datagram(resp);
  EXPECT_EQ(bytes, client_resp_bytes(7, 1, 12.5, 2, 99.75, 99.0, 100.0));
  EXPECT_EQ(std::get<runtime::ClientResp>(runtime::decode_datagram(bytes)),
            resp);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(runtime::decode_datagram(prefix), WireError) << "cut=" << cut;
  }
}

TEST(WireCorpusTest, ClientDatagramsRejectZeroIdentifiers) {
  // client_id 0 marks a free slab slot server-side; req_seq starts at 1.
  EXPECT_THROW(runtime::decode_datagram(client_req_bytes(0, 1, 1.0, 0.0)),
               WireError);
  EXPECT_THROW(runtime::decode_datagram(client_req_bytes(1, 0, 1.0, 0.0)),
               WireError);
  EXPECT_THROW(
      runtime::decode_datagram(client_resp_bytes(0, 1, 1.0, 0, 2.0, 0.0, 1.0)),
      WireError);
  EXPECT_THROW(
      runtime::decode_datagram(client_resp_bytes(1, 0, 1.0, 0, 2.0, 0.0, 1.0)),
      WireError);
}

TEST(WireCorpusTest, ClientReqRejectsBadTimesAndRtt) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(runtime::decode_datagram(client_req_bytes(1, 1, nan, 0.0)),
               WireError);
  EXPECT_THROW(runtime::decode_datagram(client_req_bytes(1, 1, inf, 0.0)),
               WireError);
  // A negative or non-finite RTT sample would poison the server's
  // per-session delay filter.
  EXPECT_THROW(runtime::decode_datagram(client_req_bytes(1, 1, 1.0, -0.001)),
               WireError);
  EXPECT_THROW(runtime::decode_datagram(client_req_bytes(1, 1, 1.0, nan)),
               WireError);
  EXPECT_THROW(runtime::decode_datagram(client_req_bytes(1, 1, 1.0, inf)),
               WireError);
}

TEST(WireCorpusTest, ClientRespRejectsNanOrInvertedBounds) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(runtime::decode_datagram(
                   client_resp_bytes(1, 1, 1.0, 0, 2.0, nan, 1.0)),
               WireError);
  EXPECT_THROW(runtime::decode_datagram(
                   client_resp_bytes(1, 1, 1.0, 0, 2.0, 0.0, nan)),
               WireError);
  EXPECT_THROW(runtime::decode_datagram(
                   client_resp_bytes(1, 1, 1.0, 0, 2.0, 1.0, 0.5)),
               WireError);
  EXPECT_THROW(runtime::decode_datagram(
                   client_resp_bytes(1, 1, nan, 0, 2.0, 0.0, 1.0)),
               WireError);
  EXPECT_THROW(runtime::decode_datagram(
                   client_resp_bytes(1, 1, 1.0, 0, nan, 0.0, 1.0)),
               WireError);
  // An unconverged server legitimately serves [-inf, +inf]: infinite
  // bounds are valid, only NaN and inversion are malformed.
  const Bytes unbounded = client_resp_bytes(1, 1, 1.0, 0, 2.0, -inf, inf);
  const auto decoded =
      std::get<runtime::ClientResp>(runtime::decode_datagram(unbounded));
  EXPECT_EQ(decoded.lo, -inf);
  EXPECT_EQ(decoded.hi, inf);
}

TEST(WireCorpusTest, TypePastLeaveRejected) {
  // kLeave = 11 is the highest assigned type; 12 must be rejected even
  // with a plausible body.
  Bytes bytes = client_req_bytes(1, 1, 1.0, 0.0);
  bytes[3] = 12;
  EXPECT_THROW(runtime::decode_datagram(bytes), WireError);
}

// ---------------------------------------------------------------------------
// Membership datagrams (JoinReq / JoinAck / Leave, DESIGN.md decision 19).
// Admission is an untrusted surface like everything else on the socket:
// golden bytes pin the canonical encoding, and every rejection path gets a
// case.

Bytes join_bytes(std::uint8_t type, std::uint64_t from, std::uint64_t nonce) {
  Bytes b{'D', 'S', 1, type};
  put_varint(b, from);
  put_varint(b, nonce);
  return b;
}

TEST(WireCorpusTest, MembershipDatagramsRoundTripCanonically) {
  runtime::JoinReqMsg req;
  req.from = 3;
  req.nonce = 0xabcdu;
  const Bytes req_bytes = runtime::encode_datagram(req);
  EXPECT_EQ(req_bytes, join_bytes(9, 3, 0xabcdu));
  EXPECT_EQ(std::get<runtime::JoinReqMsg>(runtime::decode_datagram(req_bytes)),
            req);

  runtime::JoinAckMsg ack;
  ack.from = 1;
  ack.nonce = 0xabcdu;
  const Bytes ack_bytes = runtime::encode_datagram(ack);
  EXPECT_EQ(ack_bytes, join_bytes(10, 1, 0xabcdu));
  EXPECT_EQ(std::get<runtime::JoinAckMsg>(runtime::decode_datagram(ack_bytes)),
            ack);

  runtime::LeaveMsg leave;
  leave.from = 2;
  const Bytes leave_bytes = runtime::encode_datagram(leave);
  EXPECT_EQ(leave_bytes, (Bytes{'D', 'S', 1, 11, 2}));
  EXPECT_EQ(std::get<runtime::LeaveMsg>(runtime::decode_datagram(leave_bytes)),
            leave);
}

TEST(WireCorpusTest, MembershipDatagramsRejectTruncationAndTrailing) {
  for (const Bytes& bytes :
       {runtime::encode_datagram(runtime::JoinReqMsg{3, 0x1234u}),
        runtime::encode_datagram(runtime::JoinAckMsg{1, 0x1234u}),
        runtime::encode_datagram(runtime::LeaveMsg{2})}) {
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::span<const std::uint8_t> prefix(bytes.data(), cut);
      EXPECT_THROW(runtime::decode_datagram(prefix), WireError)
          << "cut=" << cut;
    }
    Bytes trailing = bytes;
    trailing.push_back(0x00);
    EXPECT_THROW(runtime::decode_datagram(trailing), WireError);
  }
}

TEST(WireCorpusTest, MembershipDatagramsRejectBadFields) {
  // A zero nonce cannot be matched to its ack; reject at decode.
  EXPECT_THROW(runtime::decode_datagram(join_bytes(9, 3, 0)), WireError);
  EXPECT_THROW(runtime::decode_datagram(join_bytes(10, 1, 0)), WireError);
  // The invalid-processor sentinel as the joining/leaving identity.
  EXPECT_THROW(runtime::decode_datagram(join_bytes(9, kInvalidProc, 1)),
               WireError);
  EXPECT_THROW(runtime::decode_datagram(join_bytes(10, kInvalidProc, 1)),
               WireError);
  Bytes leave{'D', 'S', 1, 11};
  put_varint(leave, kInvalidProc);
  EXPECT_THROW(runtime::decode_datagram(leave), WireError);
  // A processor id that does not fit 32 bits.
  Bytes wide{'D', 'S', 1, 9};
  put_varint(wide, std::uint64_t{1} << 32);
  put_varint(wide, 1);
  EXPECT_THROW(runtime::decode_datagram(wide), WireError);
}

TEST(WireCorpusTest, EngineLoadRejectsCorruptImageUntouched) {
  // Checkpoint failures carry the checkpoint type, and a failed load leaves
  // the engine exactly as it was (here: freshly constructed and usable).
  const SystemSpec spec = testing::line_spec(2, 1e-4, 0.002, 0.03);
  SyncEngine original(spec, 1);
  Bytes image;
  original.save(image);

  Bytes bad_magic = image;
  bad_magic[0] ^= 0x01;
  SyncEngine engine(spec, 1);
  std::size_t offset = 0;
  EXPECT_THROW(engine.load(bad_magic, offset), CheckpointError);
  EXPECT_EQ(offset, 0u);
  EXPECT_EQ(engine.live_count(), 0u);

  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    std::size_t off = 0;
    EXPECT_THROW(
        engine.load(std::span<const std::uint8_t>(image.data(), cut), off),
        CheckpointError)
        << "cut=" << cut;
    EXPECT_EQ(off, 0u);
  }

  // Still pristine: the untampered image loads fine afterwards.
  offset = 0;
  engine.load(image, offset);
  EXPECT_EQ(offset, image.size());
}

}  // namespace
}  // namespace driftsync::wire
