// Tests for the Figure-2 history protocol: report completeness (Lemma 3.1),
// report-once per link/direction (Lemma 3.2), garbage collection
// (Lemma 3.3), and the Section 3.3 loss accounting.
//
// These tests drive the protocol by hand, playing all processors at once and
// shuttling batches between HistoryProtocol instances like the network
// would.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/history.h"
#include "test_util.h"

namespace driftsync {
namespace {

using testing::EventFactory;
using testing::line_spec;

class HistoryTest : public ::testing::Test {
 protected:
  void build(std::size_t n, HistoryProtocol::Options opts = {}) {
    spec_ = std::make_unique<SystemSpec>(line_spec(n, 1e-4, 0.0, 1.0));
    fac_ = std::make_unique<EventFactory>(n);
    for (ProcId p = 0; p < n; ++p) {
      protocols_.push_back(
          std::make_unique<HistoryProtocol>(*spec_, p, opts));
    }
  }

  /// Simulates a message p -> q at sender local time lt_s, receiver local
  /// time lt_r; returns the records new to q.
  EventBatch transfer(ProcId p, ProcId q, LocalTime lt_s, LocalTime lt_r) {
    const EventRecord s = fac_->send(p, lt_s, q);
    const EventBatch batch = protocols_[p]->fill_message(q, s);
    EventBatch fresh = protocols_[q]->receive_message(p, batch);
    protocols_[q]->record_own_event(fac_->receive(q, lt_r, s));
    return fresh;
  }

  std::unique_ptr<SystemSpec> spec_;
  std::unique_ptr<EventFactory> fac_;
  std::vector<std::unique_ptr<HistoryProtocol>> protocols_;
};

TEST_F(HistoryTest, FillMessageIncludesOwnSendEvent) {
  build(2);
  const EventRecord s = fac_->send(0, 1.0, 1);
  const EventBatch batch = protocols_[0]->fill_message(1, s);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, s.id);
}

TEST_F(HistoryTest, ReceiveLearnsEverything) {
  build(2);
  protocols_[0]->record_own_event(fac_->internal(0, 0.5));
  const EventBatch fresh = transfer(0, 1, 1.0, 1.2);
  EXPECT_EQ(fresh.size(), 2u);  // internal + send
  EXPECT_EQ(protocols_[1]->known_seq(0), 1);
}

TEST_F(HistoryTest, NoReReportOnSameLink) {
  build(2);
  protocols_[0]->record_own_event(fac_->internal(0, 0.5));
  transfer(0, 1, 1.0, 1.2);
  // Second message from 0 to 1 must not repeat already-reported events.
  const EventRecord s2 = fac_->send(0, 2.0, 1);
  const EventBatch batch2 = protocols_[0]->fill_message(1, s2);
  ASSERT_EQ(batch2.size(), 1u);
  EXPECT_EQ(batch2[0].id, s2.id);
}

TEST_F(HistoryTest, NoEchoBack) {
  build(2);
  transfer(0, 1, 1.0, 1.2);
  // 1's reply must not echo 0's events back to 0 (C_10[0] was advanced by
  // the receive).
  const EventRecord s2 = fac_->send(1, 2.0, 0);
  const EventBatch batch = protocols_[1]->fill_message(0, s2);
  // batch: 1's own receive event + the new send; nothing of proc 0.
  for (const EventRecord& r : batch) EXPECT_EQ(r.id.proc, 1u);
  EXPECT_EQ(batch.size(), 2u);
}

TEST_F(HistoryTest, RelayAlongPath) {
  build(3);
  protocols_[0]->record_own_event(fac_->internal(0, 0.1));
  transfer(0, 1, 1.0, 1.1);
  const EventBatch fresh = transfer(1, 2, 2.0, 2.1);
  // Processor 2 learns 0's internal, 0's send, 1's receive, 1's send.
  EXPECT_EQ(fresh.size(), 4u);
  EXPECT_EQ(protocols_[2]->known_seq(0), 1);
  EXPECT_EQ(protocols_[2]->known_seq(1), 1);
}

TEST_F(HistoryTest, BatchIsCausallyOrdered) {
  build(3);
  protocols_[0]->record_own_event(fac_->internal(0, 0.1));
  transfer(0, 1, 1.0, 1.1);
  const EventRecord s = fac_->send(1, 2.0, 2);
  const EventBatch batch = protocols_[1]->fill_message(2, s);
  // Predecessor-closure within the batch: per-processor seqs appear in
  // increasing order, and every receive's match appears before it.
  std::vector<std::int64_t> seen(3, -1);
  for (const EventRecord& r : batch) {
    EXPECT_EQ(static_cast<std::int64_t>(r.id.seq), seen[r.id.proc] + 1);
    seen[r.id.proc] = r.id.seq;
    if (r.kind == EventKind::kReceive) {
      EXPECT_LE(static_cast<std::int64_t>(r.match.seq), seen[r.match.proc]);
    }
  }
}

TEST_F(HistoryTest, GarbageCollectionSingleNeighborEmptiesBuffer) {
  build(2);
  protocols_[0]->record_own_event(fac_->internal(0, 0.5));
  EXPECT_EQ(protocols_[0]->history_size(), 1u);
  const EventRecord s = fac_->send(0, 1.0, 1);
  protocols_[0]->fill_message(1, s);
  // Proc 0's only neighbor now knows everything: H must be empty.
  EXPECT_EQ(protocols_[0]->history_size(), 0u);
}

TEST_F(HistoryTest, GarbageCollectionWaitsForAllNeighbors) {
  build(3);  // proc 1 has neighbors 0 and 2
  transfer(0, 1, 1.0, 1.1);  // 1 now holds events owed to 2
  EXPECT_GT(protocols_[1]->history_size(), 0u);
  transfer(1, 2, 2.0, 2.1);  // reported to 2; also 0 still owed 1's events
  // After telling 0 everything, only the fresh send remains: it is owed to
  // neighbor 2, which has not heard from proc 1 since.
  const EventRecord s = fac_->send(1, 3.0, 0);
  protocols_[1]->fill_message(0, s);
  EXPECT_EQ(protocols_[1]->history_size(), 1u);
  // Telling 2 drops the old events; only the newest send (owed to 0 now)
  // remains: with two neighbors the buffer never grows beyond what the
  // *other* side has not yet heard — the Lemma 3.3 mechanism.
  const EventRecord s2 = fac_->send(1, 4.0, 2);
  protocols_[1]->fill_message(2, s2);
  EXPECT_EQ(protocols_[1]->history_size(), 1u);
}

TEST_F(HistoryTest, CEntriesTrackKnowledge) {
  build(2);
  EXPECT_EQ(protocols_[0]->c_entry(1, 0), -1);
  transfer(0, 1, 1.0, 1.2);
  EXPECT_EQ(protocols_[0]->c_entry(1, 0), 0);  // 1 knows 0's send (seq 0)
  EXPECT_EQ(protocols_[1]->c_entry(0, 0), 0);  // and 1 knows that 0 knows it
}

TEST_F(HistoryTest, DuplicateAcrossLinksCounted) {
  // Triangle: 0-1, 1-2, 0-2 — event of 0 reaches 2 via both routes.
  spec_ = std::make_unique<SystemSpec>(testing::clique_spec(3));
  fac_ = std::make_unique<EventFactory>(3);
  for (ProcId p = 0; p < 3; ++p) {
    protocols_.push_back(std::make_unique<HistoryProtocol>(*spec_, p));
  }
  protocols_[0]->record_own_event(fac_->internal(0, 0.1));
  transfer(0, 1, 1.0, 1.1);  // 1 knows 0's events
  transfer(0, 2, 2.0, 2.1);  // 2 knows directly
  const EventBatch fresh = transfer(1, 2, 3.0, 3.1);  // relays 0's events
  for (const EventRecord& r : fresh) EXPECT_NE(r.id.proc, 0u);
  EXPECT_GT(protocols_[2]->duplicate_reports_received(), 0u);
  EXPECT_EQ(protocols_[2]->audit_repeat_reports(), 0u);
}

TEST_F(HistoryTest, AuditNoRepeatsOnLongExchange) {
  HistoryProtocol::Options opts;
  opts.audit = true;
  build(3, opts);
  LocalTime t = 1.0;
  for (int round = 0; round < 20; ++round) {
    transfer(0, 1, t, t + 0.1);
    t += 0.2;
    transfer(1, 2, t, t + 0.1);
    t += 0.2;
    transfer(2, 1, t, t + 0.1);
    t += 0.2;
    transfer(1, 0, t, t + 0.1);
    t += 0.2;
  }
  for (const auto& p : protocols_) {
    EXPECT_EQ(p->audit_repeat_reports(), 0u);  // Lemma 3.2
  }
}

TEST_F(HistoryTest, OwnEventsOutOfOrderThrow) {
  build(2);
  EventRecord e = fac_->internal(0, 1.0);
  e.id.seq = 3;
  EXPECT_THROW(protocols_[0]->record_own_event(e), std::logic_error);
}

TEST_F(HistoryTest, ForeignOwnEventThrows) {
  build(2);
  EXPECT_THROW(protocols_[0]->record_own_event(fac_->internal(1, 1.0)),
               std::logic_error);
}

TEST_F(HistoryTest, NonNeighborThrows) {
  build(3);  // 0 and 2 are not adjacent on the path
  const EventRecord s = fac_->send(0, 1.0, 2);
  EXPECT_THROW(protocols_[0]->fill_message(2, s), std::logic_error);
  EXPECT_THROW((void)protocols_[0]->c_entry(2, 0), std::logic_error);
}

TEST_F(HistoryTest, GapWithoutLossToleranceThrows) {
  build(2);
  // Hand-craft a batch that skips a sequence number.
  EventRecord e = fac_->internal(0, 1.0);
  e.id.seq = 2;
  EXPECT_THROW(protocols_[1]->receive_message(0, {e}), std::logic_error);
}

// Lemma 3.1 as a property: after any sequence of messages, each processor's
// knowledge frontier equals its causal past — modeled independently as
// know[u] := max(know[u], know[v]) on every delivered message v -> u.
class HistoryLemma31Test : public ::testing::TestWithParam<int> {};

TEST_P(HistoryLemma31Test, KnowledgeEqualsCausalPast) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 11);
  const std::size_t n = 3 + rng.uniform_index(4);
  const SystemSpec spec = driftsync::testing::clique_spec(n);
  EventFactory fac(n);
  std::vector<std::unique_ptr<HistoryProtocol>> protocols;
  for (ProcId p = 0; p < n; ++p) {
    protocols.push_back(std::make_unique<HistoryProtocol>(spec, p));
  }
  // The independent model: know[v][w] = highest seq of w's events in v's
  // causal past; own[] = per-processor event counter.
  std::vector<std::vector<std::int64_t>> know(
      n, std::vector<std::int64_t>(n, -1));
  std::vector<double> lt(n, 0.0);

  for (int step = 0; step < 120; ++step) {
    const ProcId v = static_cast<ProcId>(rng.uniform_index(n));
    ProcId u = static_cast<ProcId>(rng.uniform_index(n));
    if (u == v) u = static_cast<ProcId>((u + 1) % n);
    lt[v] += rng.uniform(0.01, 0.3);
    lt[u] = std::max(lt[u], lt[v]) + rng.uniform(0.01, 0.2);

    // v sends to u; delivery is immediate (order-preserving lock-step).
    const EventRecord s = fac.send(v, lt[v], u);
    know[v][v] = s.id.seq;  // v's own send enters its past
    const EventBatch batch = protocols[v]->fill_message(u, s);
    protocols[u]->receive_message(v, batch);
    const EventRecord r = fac.receive(u, lt[u], s);
    protocols[u]->record_own_event(r);
    // Model: u's past absorbs v's past, plus u's own receive.
    for (ProcId w = 0; w < n; ++w) {
      know[u][w] = std::max(know[u][w], know[v][w]);
    }
    know[u][u] = r.id.seq;

    // Lemma 3.1: the protocol's frontier equals the model's causal past.
    for (ProcId p = 0; p < n; ++p) {
      for (ProcId w = 0; w < n; ++w) {
        ASSERT_EQ(protocols[p]->known_seq(w), know[p][w])
            << "step " << step << " proc " << p << " about " << w;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomExchanges, HistoryLemma31Test,
                         ::testing::Range(0, 8));

// ------------------------------------------------------------- loss mode

class HistoryLossTest : public HistoryTest {
 protected:
  void SetUp() override {
    HistoryProtocol::Options opts;
    opts.loss_tolerant = true;
    build(2, opts);
  }
};

TEST_F(HistoryLossTest, LostMessageIsResentAfterRollback) {
  protocols_[0]->record_own_event(fac_->internal(0, 0.5));
  // First message is lost: fill (advances C optimistically), never deliver.
  const EventRecord s1 = fac_->send(0, 1.0, 1);
  const EventBatch lost = protocols_[0]->fill_message(1, s1);
  EXPECT_EQ(lost.size(), 2u);
  // GC must NOT have discarded the unconfirmed events.
  EXPECT_EQ(protocols_[0]->history_size(), 2u);
  protocols_[0]->handle_loss(1);
  // Next message re-reports everything plus the new send.
  const EventRecord s2 = fac_->send(0, 2.0, 1);
  const EventBatch batch2 = protocols_[0]->fill_message(1, s2);
  EXPECT_EQ(batch2.size(), 3u);
  const EventBatch fresh = protocols_[1]->receive_message(0, batch2);
  EXPECT_EQ(fresh.size(), 3u);
  EXPECT_EQ(protocols_[1]->gap_dropped(), 0u);
}

TEST_F(HistoryLossTest, ConfirmationReleasesBuffer) {
  protocols_[0]->record_own_event(fac_->internal(0, 0.5));
  const EventRecord s1 = fac_->send(0, 1.0, 1);
  protocols_[0]->fill_message(1, s1);
  EXPECT_EQ(protocols_[0]->history_size(), 2u);  // held: unconfirmed
  protocols_[0]->confirm_delivery(1);
  EXPECT_EQ(protocols_[0]->history_size(), 0u);  // released
}

TEST_F(HistoryLossTest, GapDroppedRecordsRecoveredLater) {
  // Message 1 (lost) carries events; message 2 sent before detection has a
  // gap at the receiver; rollback then resends everything.
  protocols_[0]->record_own_event(fac_->internal(0, 0.5));
  const EventRecord s1 = fac_->send(0, 1.0, 1);
  protocols_[0]->fill_message(1, s1);  // lost in transit
  const EventRecord s2 = fac_->send(0, 1.5, 1);
  const EventBatch batch2 = protocols_[0]->fill_message(1, s2);
  ASSERT_EQ(batch2.size(), 1u);  // only the new send (optimistic C)
  const EventBatch fresh2 = protocols_[1]->receive_message(0, batch2);
  EXPECT_TRUE(fresh2.empty());  // unusable: gap
  EXPECT_EQ(protocols_[1]->gap_dropped(), 1u);
  // Detection reports: message 1 lost, message 2 delivered.
  protocols_[0]->handle_loss(1);
  protocols_[0]->confirm_delivery(1);
  const EventRecord s3 = fac_->send(0, 2.0, 1);
  const EventBatch batch3 = protocols_[0]->fill_message(1, s3);
  const EventBatch fresh3 = protocols_[1]->receive_message(0, batch3);
  EXPECT_EQ(protocols_[1]->known_seq(0), 3);  // internal + 3 sends, all known
  EXPECT_EQ(fresh3.size(), 4u);
}

TEST_F(HistoryLossTest, MisuseThrows) {
  EXPECT_THROW(protocols_[0]->confirm_delivery(1), std::logic_error);
  EXPECT_THROW(protocols_[0]->handle_loss(1), std::logic_error);
}

}  // namespace
}  // namespace driftsync
