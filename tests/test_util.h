// Shared helpers for the driftsync test suites: compact builders for
// specifications and hand-crafted event sequences, plus the runtime-layer
// fixtures (specs, NodeConfigs, the 3-node ThreadHub net, and the bracketed
// ground-truth containment check) shared by runtime_test, udp_test and the
// observability suites.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "core/event.h"
#include "core/optimal_csa.h"
#include "core/spec.h"
#include "runtime/node.h"
#include "runtime/thread_transport.h"
#include "runtime/time_source.h"

namespace driftsync::testing {

/// Path 0-1-...-n-1 with identical link bounds.
inline SystemSpec line_spec(std::size_t n, double rho = 1e-4,
                            double min_delay = 0.0, double max_delay = 1.0,
                            ProcId source = 0) {
  std::vector<ClockSpec> clocks(n, ClockSpec{rho});
  clocks[source].rho = 0.0;
  std::vector<LinkSpec> links;
  for (ProcId i = 0; i + 1 < n; ++i) {
    links.push_back(LinkSpec{i, static_cast<ProcId>(i + 1), min_delay,
                             max_delay});
  }
  return SystemSpec(std::move(clocks), std::move(links), source);
}

/// Fully connected spec.
inline SystemSpec clique_spec(std::size_t n, double rho = 1e-4,
                              double min_delay = 0.0, double max_delay = 1.0) {
  std::vector<ClockSpec> clocks(n, ClockSpec{rho});
  clocks[0].rho = 0.0;
  std::vector<LinkSpec> links;
  for (ProcId i = 0; i < n; ++i) {
    for (ProcId j = i + 1; j < n; ++j) {
      links.push_back(LinkSpec{i, j, min_delay, max_delay});
    }
  }
  return SystemSpec(std::move(clocks), std::move(links), 0);
}

/// Mints per-processor event records with strictly increasing sequence
/// numbers; callers supply local times.
class EventFactory {
 public:
  explicit EventFactory(std::size_t num_procs) : next_seq_(num_procs, 0) {}

  EventRecord internal(ProcId p, LocalTime lt) {
    return make(p, lt, EventKind::kInternal, kInvalidProc, kInvalidEvent);
  }
  EventRecord send(ProcId p, LocalTime lt, ProcId dest) {
    return make(p, lt, EventKind::kSend, dest, kInvalidEvent);
  }
  EventRecord receive(ProcId p, LocalTime lt, const EventRecord& send_event,
                      double slack = 0.0) {
    EventRecord rec = make(p, lt, EventKind::kReceive, send_event.id.proc,
                           send_event.id);
    rec.slack = slack;
    return rec;
  }
  EventRecord loss_decl(ProcId p, LocalTime lt,
                        const EventRecord& send_event) {
    return make(p, lt, EventKind::kLossDecl, send_event.peer, send_event.id);
  }

 private:
  EventRecord make(ProcId p, LocalTime lt, EventKind kind, ProcId peer,
                   EventId match) {
    EventRecord rec;
    rec.id = EventId{p, next_seq_[p]++};
    rec.lt = lt;
    rec.kind = kind;
    rec.peer = peer;
    rec.match = match;
    return rec;
  }

  std::vector<std::uint32_t> next_seq_;
};

// ---------------------------------------------------------------------------
// Runtime-layer fixtures (DESIGN.md S7)

/// The CSA every runtime test hosts: optimal, loss-tolerant (real
/// transports lose messages).
inline std::unique_ptr<Csa> loss_tolerant_csa() {
  OptimalCsa::Options opts;
  opts.loss_tolerant = true;
  return std::make_unique<OptimalCsa>(opts);
}

/// Source (rho 0) and one drifting peer over a single 50 ms link.
inline SystemSpec two_node_spec() {
  return SystemSpec(std::vector<ClockSpec>{{0.0}, {5e-4}},
                    std::vector<LinkSpec>{{0, 1, 0.0, 0.05}}, 0);
}

/// Uniform NodeConfig for short wall-clock integration runs; callers that
/// need slower fate resolution (e.g. real sockets) override the periods.
inline runtime::NodeConfig node_config(ProcId self, const SystemSpec& spec,
                                       double poll_period = 0.04,
                                       double fate_timeout = 0.2,
                                       double skip_retry = 0.08) {
  runtime::NodeConfig cfg;
  cfg.self = self;
  cfg.spec = spec;
  cfg.poll_period = poll_period;
  cfg.fate_timeout = fate_timeout;
  cfg.skip_retry = skip_retry;
  return cfg;
}

/// Bracketed containment check: the estimate queried between two readings
/// of the ground-truth clock must overlap [t0, t1].  The source node runs
/// ScaledTimeSource(0, 1), so true source time == SystemTimeSource::now().
inline ::testing::AssertionResult contains_truth(const runtime::Node& node) {
  const runtime::SystemTimeSource truth;
  const double t0 = truth.now();
  const Interval est = node.estimate();
  const double t1 = truth.now();
  if (est.lo <= t1 && est.hi >= t0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "estimate [" << est.lo << ", " << est.hi
         << "] misses true source time in [" << t0 << ", " << t1 << "]";
}

/// The canonical 3-node path (source - relay - leaf) over an in-process
/// ThreadHub: spec rho 5e-4, 50 ms link bounds, hub seed 11.  Tests
/// configure per-direction latency/loss on the hub themselves.
struct ThreeNodeNet {
  SystemSpec spec;
  runtime::ThreadHub hub;

  ThreeNodeNet()
      : spec(std::vector<ClockSpec>{{0.0}, {5e-4}, {5e-4}},
             std::vector<LinkSpec>{{0, 1, 0.0, 0.05}, {1, 2, 0.0, 0.05}}, 0),
        hub(11) {}

  [[nodiscard]] runtime::NodeConfig config(ProcId self) const {
    return node_config(self, spec);
  }

  std::unique_ptr<runtime::Node> make_node(runtime::NodeConfig cfg,
                                           double offset, double rate) {
    const ProcId self = cfg.self;
    return std::make_unique<runtime::Node>(
        std::move(cfg), loss_tolerant_csa(),
        std::make_unique<runtime::ScaledTimeSource>(offset, rate),
        hub.endpoint(self));
  }
};

}  // namespace driftsync::testing
