// Shared helpers for the driftsync test suites: compact builders for
// specifications and hand-crafted event sequences.
#pragma once

#include <vector>

#include "core/event.h"
#include "core/spec.h"

namespace driftsync::testing {

/// Path 0-1-...-n-1 with identical link bounds.
inline SystemSpec line_spec(std::size_t n, double rho = 1e-4,
                            double min_delay = 0.0, double max_delay = 1.0,
                            ProcId source = 0) {
  std::vector<ClockSpec> clocks(n, ClockSpec{rho});
  clocks[source].rho = 0.0;
  std::vector<LinkSpec> links;
  for (ProcId i = 0; i + 1 < n; ++i) {
    links.push_back(LinkSpec{i, static_cast<ProcId>(i + 1), min_delay,
                             max_delay});
  }
  return SystemSpec(std::move(clocks), std::move(links), source);
}

/// Fully connected spec.
inline SystemSpec clique_spec(std::size_t n, double rho = 1e-4,
                              double min_delay = 0.0, double max_delay = 1.0) {
  std::vector<ClockSpec> clocks(n, ClockSpec{rho});
  clocks[0].rho = 0.0;
  std::vector<LinkSpec> links;
  for (ProcId i = 0; i < n; ++i) {
    for (ProcId j = i + 1; j < n; ++j) {
      links.push_back(LinkSpec{i, j, min_delay, max_delay});
    }
  }
  return SystemSpec(std::move(clocks), std::move(links), 0);
}

/// Mints per-processor event records with strictly increasing sequence
/// numbers; callers supply local times.
class EventFactory {
 public:
  explicit EventFactory(std::size_t num_procs) : next_seq_(num_procs, 0) {}

  EventRecord internal(ProcId p, LocalTime lt) {
    return make(p, lt, EventKind::kInternal, kInvalidProc, kInvalidEvent);
  }
  EventRecord send(ProcId p, LocalTime lt, ProcId dest) {
    return make(p, lt, EventKind::kSend, dest, kInvalidEvent);
  }
  EventRecord receive(ProcId p, LocalTime lt, const EventRecord& send_event) {
    return make(p, lt, EventKind::kReceive, send_event.id.proc,
                send_event.id);
  }
  EventRecord loss_decl(ProcId p, LocalTime lt,
                        const EventRecord& send_event) {
    return make(p, lt, EventKind::kLossDecl, send_event.peer, send_event.id);
  }

 private:
  EventRecord make(ProcId p, LocalTime lt, EventKind kind, ProcId peer,
                   EventId match) {
    EventRecord rec;
    rec.id = EventId{p, next_seq_[p]++};
    rec.lt = lt;
    rec.kind = kind;
    rec.peer = peer;
    rec.match = match;
    return rec;
  }

  std::vector<std::uint32_t> next_seq_;
};

}  // namespace driftsync::testing
