// Unit tests for the common substrate: ids, time helpers, intervals, RNG,
// statistics and the table printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "common/ids.h"
#include "common/interval.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/time_types.h"

namespace driftsync {
namespace {

// ------------------------------------------------------------------- ids

TEST(EventIdTest, PackUnpackRoundTrip) {
  const EventId id{42, 17};
  EXPECT_EQ(EventId::unpack(id.pack()), id);
}

TEST(EventIdTest, PackUnpackExtremes) {
  const EventId id{0xfffffffe, 0xffffffff};
  EXPECT_EQ(EventId::unpack(id.pack()), id);
}

TEST(EventIdTest, OrderingByProcThenSeq) {
  EXPECT_LT((EventId{1, 9}), (EventId{2, 0}));
  EXPECT_LT((EventId{1, 3}), (EventId{1, 4}));
}

TEST(EventIdTest, InvalidIsNotValid) {
  EXPECT_FALSE(kInvalidEvent.valid());
  EXPECT_TRUE((EventId{0, 0}).valid());
}

TEST(EventIdTest, HashSpreads) {
  std::unordered_set<std::size_t> hashes;
  std::hash<EventId> h;
  for (ProcId p = 0; p < 32; ++p) {
    for (std::uint32_t s = 0; s < 32; ++s) hashes.insert(h(EventId{p, s}));
  }
  EXPECT_EQ(hashes.size(), 32u * 32u);  // no collisions on this tiny set
}

// ------------------------------------------------------------ time_types

TEST(TimeCloseTest, ExactAndRelative) {
  EXPECT_TRUE(time_close(1.0, 1.0));
  EXPECT_TRUE(time_close(1e12, 1e12 * (1 + 1e-12)));
  EXPECT_FALSE(time_close(1.0, 1.001));
}

TEST(TimeCloseTest, Infinities) {
  EXPECT_TRUE(time_close(kNoBound, kNoBound));
  EXPECT_TRUE(time_close(kNegInf, kNegInf));
  EXPECT_FALSE(time_close(kNoBound, kNegInf));
  EXPECT_FALSE(time_close(kNoBound, 1e300));
}

// --------------------------------------------------------------- interval

TEST(IntervalTest, EverythingContainsAll) {
  const Interval all = Interval::everything();
  EXPECT_TRUE(all.contains(0.0));
  EXPECT_TRUE(all.contains(-1e308));
  EXPECT_FALSE(all.bounded());
  EXPECT_FALSE(all.empty());
}

TEST(IntervalTest, PointInterval) {
  const Interval p = Interval::point(3.5);
  EXPECT_TRUE(p.contains(3.5));
  EXPECT_FALSE(p.contains(3.5000001));
  EXPECT_DOUBLE_EQ(p.width(), 0.0);
}

TEST(IntervalTest, EmptyDetection) {
  EXPECT_TRUE((Interval{2.0, 1.0}).empty());
  EXPECT_FALSE((Interval{1.0, 1.0}).empty());
}

TEST(IntervalTest, IntersectOverlap) {
  const Interval a{0.0, 5.0};
  const Interval b{3.0, 9.0};
  EXPECT_EQ(a.intersect(b), (Interval{3.0, 5.0}));
}

TEST(IntervalTest, IntersectDisjointIsEmpty) {
  EXPECT_TRUE((Interval{0.0, 1.0}).intersect(Interval{2.0, 3.0}).empty());
}

TEST(IntervalTest, MinkowskiSumAndShift) {
  const Interval a{1.0, 2.0};
  const Interval b{10.0, 20.0};
  EXPECT_EQ(a + b, (Interval{11.0, 22.0}));
  EXPECT_EQ(a + 5.0, (Interval{6.0, 7.0}));
}

TEST(IntervalTest, ContainsInterval) {
  EXPECT_TRUE((Interval{0.0, 10.0}).contains(Interval{2.0, 3.0}));
  EXPECT_FALSE((Interval{0.0, 10.0}).contains(Interval{2.0, 11.0}));
}

TEST(IntervalTest, WidthOfUnbounded) {
  EXPECT_TRUE(std::isinf(Interval::everything().width()));
}

TEST(IntervalTest, IntervalsClose) {
  EXPECT_TRUE(intervals_close(Interval{1.0, 2.0},
                              Interval{1.0 + 1e-12, 2.0 - 1e-12}));
  EXPECT_FALSE(intervals_close(Interval{1.0, 2.0}, Interval{1.0, 2.1}));
  EXPECT_TRUE(intervals_close(Interval::everything(),
                              Interval::everything()));
}

// -------------------------------------------------------------------- rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, UniformIndexInRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto k = rng.uniform_index(10);
    ASSERT_LT(k, 10u);
    ++counts[k];
  }
  for (const int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, FlipProbability) {
  Rng rng(13);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.flip(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, SplitIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  Rng parent2(5);
  parent2.split();
  EXPECT_EQ(parent.next_u64(), parent2.next_u64());  // parent deterministic
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// ------------------------------------------------------------------ stats

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.mean()));
}

TEST(RunningStatsTest, MeanMinMax) {
  RunningStats s;
  for (const double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(RunningStatsTest, Variance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(PercentileTest, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.35), 3.5);
}

TEST(PercentileTest, ClampsOutOfRangeQ) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 3.0);
}

TEST(PercentileTest, EmptyInputIsACallerBug) {
  EXPECT_THROW(percentile({}, 0.5), std::logic_error);
  EXPECT_THROW(percentile({1.0}, std::nan("")), std::logic_error);
}

/// Independent reference: sort, split the fractional position q*(n-1) into
/// integer part and remainder with floor, and blend the two neighbors.
double percentile_reference(std::vector<double> v, double q) {
  q = std::max(0.0, std::min(1.0, q));
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  if (lo + 1 >= v.size()) return v.back();
  const double frac = pos - std::floor(pos);
  return v[lo] + frac * (v[lo + 1] - v[lo]);
}

/// Property test: random samples and quantiles agree with the reference,
/// the result is monotone in q, and always lies within [min, max].
TEST(PercentileTest, MatchesReferenceOnRandomInputs) {
  Rng rng(2026);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(40);
    std::vector<double> v(n);
    for (auto& x : v) x = rng.uniform(-1e6, 1e6);
    double prev = -std::numeric_limits<double>::infinity();
    for (const double q :
         {-0.2, 0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0, 1.7}) {
      const double got = percentile(v, q);
      EXPECT_NEAR(got, percentile_reference(v, q), 1e-6)
          << "n=" << n << " q=" << q;
      EXPECT_GE(got + 1e-9, prev) << "not monotone in q at q=" << q;
      prev = got;
      EXPECT_GE(got, *std::min_element(v.begin(), v.end()));
      EXPECT_LE(got, *std::max_element(v.begin(), v.end()));
    }
  }
}

TEST(LinearFitTest, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, RejectsDegenerate) {
  EXPECT_THROW(linear_fit({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(linear_fit({1.0, 1.0}, {2.0, 3.0}), std::invalid_argument);
}

TEST(LogLogFitTest, RecoverExponent) {
  std::vector<double> x, y;
  for (double v = 1; v <= 64; v *= 2) {
    x.push_back(v);
    y.push_back(3.0 * v * v);  // y = 3 x^2
  }
  const LinearFit f = loglog_fit(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
}

TEST(LogLogFitTest, RejectsNonPositive) {
  EXPECT_THROW(loglog_fit({1.0, -2.0}, {1.0, 2.0}), std::invalid_argument);
}

// ------------------------------------------------------------------ table

TEST(TableTest, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(1.5, 2), "1.50");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
  EXPECT_EQ(Table::num(kNoBound), "inf");
}


TEST(TableTest, CsvOutput) {
  Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",\"he said \"\"hi\"\"\"\n");
}

}  // namespace
}  // namespace driftsync
