// Property + oracle suite for the disciplined output clock (DESIGN.md
// decision 21).
//
// Three layers of lockdown:
//   * Unit behaviors: init snap, proportional steering, slew clamping,
//     continuity across re-steers, hold on unbounded input, the accuracy
//     API's jump window and drift integration.
//   * Randomized properties: 1000+ seeded sequences of interval updates —
//     adversarial midpoint jumps, quarantine-style widenings, collapses,
//     unbounded spells, and clock steps through a FaultyTimeSource — assert
//     monotonicity, the per-pair rate bound, and containment-when-feasible
//     via the production oracle check (InvariantOracle::disciplined_check),
//     so the test and the chaos harness share one definition of "legal".
//   * A golden journal: one seeded sequence pins journal_text() to the
//     byte, so any steering-policy change is a deliberate diff.
//
// The oracle check itself gets a teeth test: a NaiveSteppingClock double
// that snaps to the midpoint (what the disciplined clock refuses to do)
// must be caught as disciplined-rate / disciplined-monotone.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "clock/disciplined_clock.h"
#include "common/interval.h"
#include "common/rng.h"
#include "runtime/chaos.h"
#include "runtime/node.h"
#include "runtime/oracle.h"
#include "runtime/time_source.h"

namespace driftsync::clock {
namespace {

using runtime::FaultyTimeSource;
using runtime::InvariantOracle;
using runtime::NodeSample;

// ---------------------------------------------------------------------------
// Unit behaviors.

TEST(DisciplinedClockTest, FreeRunsUntilFirstBoundedInterval) {
  DisciplinedClock clk;
  EXPECT_FALSE(clk.initialized());
  EXPECT_DOUBLE_EQ(clk.now(3.5), 3.5);  // Identity free-run.
  const SteerDecision d = clk.steer(4.0, Interval::everything());
  EXPECT_EQ(d.kind, SteerDecision::Kind::kHold);
  EXPECT_FALSE(clk.initialized());
  EXPECT_FALSE(clk.accuracy().initialized);
}

TEST(DisciplinedClockTest, InitSnapsToMidpointOnce) {
  DisciplinedClock clk;
  const SteerDecision d = clk.steer(5.0, Interval{10.0, 12.0});
  EXPECT_EQ(d.kind, SteerDecision::Kind::kInit);
  EXPECT_TRUE(clk.initialized());
  EXPECT_DOUBLE_EQ(d.out, 11.0);
  EXPECT_DOUBLE_EQ(d.rate, 1.0);
  EXPECT_DOUBLE_EQ(clk.now(5.0), 11.0);
  EXPECT_DOUBLE_EQ(clk.now(6.0), 12.0);  // Rate 1 until the next steer.
}

TEST(DisciplinedClockTest, SteersProportionallyTowardMidpoint) {
  DisciplineOptions opts;
  opts.max_slew = 1e-3;
  opts.steer_horizon = 10.0;
  DisciplinedClock clk(opts);
  clk.steer(0.0, Interval{100.0, 100.0});
  // Midpoint 1 ms ahead of the output: err/horizon = 1e-4, inside budget.
  const SteerDecision d = clk.steer(1.0, Interval{101.0005, 101.0015});
  EXPECT_EQ(d.kind, SteerDecision::Kind::kSteer);
  EXPECT_NEAR(d.error, 1e-3, 1e-12);
  EXPECT_NEAR(d.rate, 1.0 + 1e-4, 1e-12);
  EXPECT_FALSE(d.clamped);
}

TEST(DisciplinedClockTest, ClampsToSlewBudget) {
  DisciplineOptions opts;
  opts.max_slew = 5e-4;
  opts.steer_horizon = 1.0;
  DisciplinedClock clk(opts);
  clk.steer(0.0, Interval{50.0, 50.0});
  // A 2-second error cannot be corrected at 5e-4: the budget saturates.
  const SteerDecision d = clk.steer(1.0, Interval{53.0, 53.0});
  EXPECT_EQ(d.kind, SteerDecision::Kind::kSteer);
  EXPECT_TRUE(d.clamped);
  EXPECT_DOUBLE_EQ(d.rate, 1.0 + 5e-4);
  EXPECT_EQ(clk.accuracy().slew_clamps, 1u);
  // And symmetrically for a clock ahead of the interval.
  const SteerDecision d2 = clk.steer(2.0, Interval{40.0, 40.0});
  EXPECT_TRUE(d2.clamped);
  EXPECT_DOUBLE_EQ(d2.rate, 1.0 - 5e-4);
}

TEST(DisciplinedClockTest, OutputContinuousAcrossResteer) {
  DisciplinedClock clk;
  clk.steer(0.0, Interval{10.0, 10.0});
  const double before = clk.now(2.0);
  const SteerDecision d = clk.steer(2.0, Interval{90.0, 90.0});
  EXPECT_DOUBLE_EQ(d.out, before);  // Continuity: no step, only a new rate.
  EXPECT_DOUBLE_EQ(clk.now(2.0), before);
}

TEST(DisciplinedClockTest, HoldKeepsRateThroughUnboundedSpell) {
  DisciplinedClock clk;
  clk.steer(0.0, Interval{0.0, 0.0});
  const SteerDecision s = clk.steer(1.0, Interval{5.0, 5.0});
  ASSERT_EQ(s.kind, SteerDecision::Kind::kSteer);
  const SteerDecision h = clk.steer(2.0, Interval::everything());
  EXPECT_EQ(h.kind, SteerDecision::Kind::kHold);
  EXPECT_DOUBLE_EQ(h.rate, s.rate);  // The chase continues uninterrupted.
  EXPECT_EQ(clk.accuracy().holds, 1u);
}

TEST(DisciplinedClockTest, ReadingFreezesAtRegressingLocalTime) {
  DisciplinedClock clk;
  clk.steer(10.0, Interval{10.0, 10.0});
  const double at_ref = clk.now(10.0);
  EXPECT_DOUBLE_EQ(clk.now(9.0), at_ref);  // Never backward, even misused.
  EXPECT_GE(clk.now(11.0), at_ref);
}

TEST(DisciplinedClockTest, JumpWindowTracksAndResets) {
  DisciplineOptions opts;
  opts.steer_horizon = 1.0;
  DisciplinedClock clk(opts);
  clk.steer(0.0, Interval{0.0, 0.0});
  clk.steer(1.0, Interval{2.0, 2.0});
  clk.steer(2.0, Interval{3.5, 3.5});
  const AccuracyStats a = clk.accuracy();
  EXPECT_EQ(a.jumps, 2u);
  EXPECT_GT(a.jump_max, a.jump_min);
  EXPECT_GT(a.jump_avg, 0.0);
  clk.reset_jump_window();
  const AccuracyStats b = clk.accuracy();
  EXPECT_EQ(b.jumps, 0u);
  EXPECT_DOUBLE_EQ(b.jump_max, 0.0);
  // Lifetime counters survive the window reset.
  EXPECT_EQ(b.resteers, a.resteers);
}

TEST(DisciplinedClockTest, DriftIntegrationMeasuresAppliedRate) {
  DisciplineOptions opts;
  opts.max_slew = 1e-3;
  opts.steer_horizon = 1.0;
  // Window covering only the saturated spans: the init-era rate-1 span has
  // aged out, so the integral reads pure applied slew.
  opts.drift_window = 10.0;
  DisciplinedClock clk(opts);
  clk.steer(0.0, Interval{0.0, 0.0});
  // Keep the midpoint running away so every steer saturates at +1e-3.
  for (int i = 1; i <= 20; ++i) {
    clk.steer(static_cast<double>(i),
              Interval{static_cast<double>(i) + 10.0,
                       static_cast<double>(i) + 10.0});
  }
  EXPECT_NEAR(clk.accuracy().drift, 1e-3, 1e-9);
}

TEST(DisciplinedClockTest, WorstCaseErrorFollowsIntervalGeometry) {
  DisciplinedClock clk;
  clk.steer(0.0, Interval{10.0, 14.0});  // Snap to 12.
  AccuracyStats a = clk.accuracy();
  EXPECT_DOUBLE_EQ(a.worst_case_error, 2.0);
  EXPECT_DOUBLE_EQ(a.deficit, 0.0);
  // The interval jumps away; the slew-limited output is now outside it.
  clk.steer(1.0, Interval{20.0, 21.0});
  a = clk.accuracy();
  EXPECT_GT(a.deficit, 0.0);
  EXPECT_NEAR(a.worst_case_error, 21.0 - clk.now(1.0), 1e-9);
}

// ---------------------------------------------------------------------------
// Randomized properties.  One seeded episode drives a DisciplinedClock
// through an adversarial interval sequence and checks every consecutive
// pair of readings against the contract — with the SAME production check
// the chaos oracle runs, so "legal" has exactly one definition.

struct EpisodeResult {
  std::uint64_t steers = 0;
  std::uint64_t checked_pairs = 0;
};

NodeSample make_sample(const DisciplinedClock& clk, LocalTime lt,
                       const Interval& est) {
  NodeSample s;
  s.lt = lt;
  s.est = est;
  s.disc.initialized = clk.initialized();
  s.disc.out = clk.now(lt);
  s.disc.max_slew = clk.options().max_slew;
  if (est.bounded() && !est.empty()) {
    s.disc.deficit = std::max({0.0, est.lo - s.disc.out, s.disc.out - est.hi});
  }
  return s;
}

EpisodeResult run_episode(std::uint64_t seed) {
  Rng rng(seed);
  DisciplineOptions opts;
  opts.max_slew = rng.uniform(1e-4, 2e-3);
  opts.steer_horizon = rng.uniform(0.5, 8.0);
  DisciplinedClock clk(opts);

  // The local clock may itself misbehave: steps and rate churn through the
  // chaos harness's FaultyTimeSource over a frozen base, so lt advances
  // exactly as the test dictates plus whatever faults it injects.
  auto base = std::make_unique<runtime::ScaledTimeSource>(0.0, 0.0);
  FaultyTimeSource faulty(std::move(base));

  double mid = rng.uniform(-50.0, 50.0);
  double prev_out = -kNoBound;
  LocalTime prev_lt = 0.0;
  bool have_prev_sample = false;
  NodeSample prev_sample;
  EpisodeResult result;

  const int steps = 30;
  for (int i = 0; i < steps; ++i) {
    // Advance local time; occasionally the "oscillator" steps forward (a
    // negative step would freeze the FaultyTimeSource reading, which the
    // clock must also survive — exercised via inject_step < 0 below).
    if (rng.flip(0.10)) faulty.inject_step(rng.uniform(-0.3, 0.5));
    faulty.inject_step(rng.uniform(0.001, 0.4));  // Simulated elapsing.
    const LocalTime lt = faulty.now();

    // Adversarial interval: drifts, jumps, widens, collapses, vanishes.
    mid += rng.uniform(-0.01, 0.02);
    if (rng.flip(0.15)) mid += rng.uniform(-2.0, 2.0);  // Ingest jump.
    double half = rng.uniform(1e-4, 0.05);
    if (rng.flip(0.10)) half *= 40.0;  // Quarantine-style widening.
    Interval est{mid - half, mid + half};
    if (rng.flip(0.08)) est = Interval::everything();

    // Interleaved read between the previous steer and this one (a consumer
    // asking for the time mid-chase): monotone against everything so far.
    if (clk.initialized() && lt > prev_lt) {
      const LocalTime probe_lt = prev_lt + (lt - prev_lt) * rng.next_double();
      const double probe_out = clk.now(probe_lt);
      EXPECT_GE(probe_out, prev_out - 1e-9) << "seed " << seed << " step "
                                            << i;
      prev_out = std::max(prev_out, probe_out);
    }

    clk.steer(lt, est);
    ++result.steers;
    prev_lt = lt;

    if (clk.initialized()) {
      // Monotone, and rate-bounded against the *local* clock: the pair
      // contract that makes two reads measure a real duration.
      const double out = clk.now(lt);
      EXPECT_GE(out, prev_out - 1e-9) << "seed " << seed << " step " << i;
      prev_out = std::max(prev_out, out);

      const NodeSample cur = make_sample(clk, lt, est);
      if (have_prev_sample) {
        std::string detail;
        const char* inv = InvariantOracle::disciplined_check(
            prev_sample, cur, /*rho=*/0.0, /*tolerance=*/1e-7, &detail);
        EXPECT_EQ(inv, nullptr)
            << "seed " << seed << " step " << i << ": " << inv << " — "
            << detail;
        ++result.checked_pairs;
      }
      prev_sample = cur;
      have_prev_sample = true;
    }
  }
  return result;
}

TEST(DisciplineProperty, ThousandSeededEpisodesHoldTheContract) {
  std::uint64_t steers = 0;
  std::uint64_t pairs = 0;
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    const EpisodeResult r = run_episode(seed);
    steers += r.steers;
    pairs += r.checked_pairs;
  }
  // The adversary must actually have exercised the check, not vacuously
  // skipped it (e.g. by never producing a bounded interval).
  EXPECT_GT(steers, 25'000u);
  EXPECT_GT(pairs, 15'000u);
}

TEST(DisciplineProperty, RateBoundHoldsBetweenArbitraryReadPairs) {
  Rng rng(0xD15C1F71);
  DisciplineOptions opts;
  opts.max_slew = 5e-4;
  DisciplinedClock clk(opts);
  clk.steer(0.0, Interval{100.0, 100.0});
  LocalTime lt = 0.0;
  double prev_lt = 0.0;
  double prev_out = clk.now(0.0);
  for (int i = 0; i < 2000; ++i) {
    lt += rng.uniform(0.0, 0.05);
    if (rng.flip(0.2)) {
      clk.steer(lt, Interval{100.0 + lt + rng.uniform(-1.0, 1.0),
                             100.0 + lt + rng.uniform(0.0, 0.01) + 1.0});
    }
    const double out = clk.now(lt);
    const double dlt = lt - prev_lt;
    EXPECT_GE(out - prev_out, dlt * (1.0 - opts.max_slew) - 1e-9);
    EXPECT_LE(out - prev_out, dlt * (1.0 + opts.max_slew) + 1e-9);
    prev_lt = lt;
    prev_out = out;
  }
}

// ---------------------------------------------------------------------------
// Oracle teeth.  A clock that SNAPS to the midpoint — the obvious naive
// implementation the disciplined clock exists to replace — must be caught
// by the production invariant-6 check.  If this test fails, the oracle has
// lost its teeth and the chaos scenarios prove nothing about clocks.

/// Deliberately broken test double: externalizes midpoint snapping while
/// claiming the disciplined contract (max_slew as configured).
class NaiveSteppingClock {
 public:
  explicit NaiveSteppingClock(double max_slew) : max_slew_(max_slew) {}

  NodeSample update(LocalTime lt, const Interval& est) {
    if (est.bounded() && !est.empty()) {
      out_ = est.midpoint();  // The snap a disciplined clock never takes.
      initialized_ = true;
    }
    NodeSample s;
    s.lt = lt;
    s.est = est;
    s.disc.initialized = initialized_;
    s.disc.out = out_;
    s.disc.max_slew = max_slew_;
    s.disc.deficit = 0.0;  // Snapping is always "inside" — that's the lie.
    return s;
  }

 private:
  double max_slew_;
  double out_ = 0.0;
  bool initialized_ = false;
};

TEST(DisciplineOracleTest, CatchesForwardSnapAsRateViolation) {
  NaiveSteppingClock naive(5e-4);
  const NodeSample a = naive.update(1.0, Interval{10.0, 10.2});
  // A good exchange moves the midpoint +0.5 s; the naive clock snaps.
  const NodeSample b = naive.update(1.01, Interval{10.5, 10.7});
  std::string detail;
  const char* inv =
      InvariantOracle::disciplined_check(a, b, 1e-4, 0.02, &detail);
  ASSERT_NE(inv, nullptr);
  EXPECT_STREQ(inv, "disciplined-rate");
  EXPECT_FALSE(detail.empty());
}

TEST(DisciplineOracleTest, CatchesBackwardSnapAsMonotoneViolation) {
  NaiveSteppingClock naive(5e-4);
  const NodeSample a = naive.update(1.0, Interval{10.0, 10.2});
  const NodeSample b = naive.update(1.01, Interval{9.4, 9.6});
  std::string detail;
  const char* inv =
      InvariantOracle::disciplined_check(a, b, 1e-4, 0.02, &detail);
  ASSERT_NE(inv, nullptr);
  EXPECT_STREQ(inv, "disciplined-monotone");
}

TEST(DisciplineOracleTest, CatchesDeficitLieAsContainmentViolation) {
  // A clock whose rate stays legal but whose containment deficit balloons
  // with no interval motion to justify it: the allowance is only the
  // slew+drift gap over dlt, so a deficit appearing from nowhere trips the
  // containment branch specifically (rate and monotone both pass).
  NodeSample a;
  a.lt = 0.0;
  a.est = Interval{10.0, 10.1};
  a.disc = {true, 10.05, 5e-4, 0.0, 0.05};
  NodeSample b;
  b.lt = 1.0;
  b.est = Interval{11.0, 11.1};  // Advanced exactly with local time...
  b.disc = {true, 11.05, 5e-4, 0.9, 0.95};  // ...yet deficit 0.9 claimed.
  std::string detail;
  const char* inv =
      InvariantOracle::disciplined_check(a, b, 1e-4, 0.02, &detail);
  ASSERT_NE(inv, nullptr);
  EXPECT_STREQ(inv, "disciplined-containment");
}

TEST(DisciplineOracleTest, AcceptsTheRealClockUnderTheSameAdversary) {
  // The same update schedule that convicts the naive clock acquits the
  // disciplined one (rho = 0: local time here IS the envelope clock).
  DisciplineOptions opts;
  opts.max_slew = 5e-4;
  DisciplinedClock clk(opts);
  clk.steer(1.0, Interval{10.0, 10.2});
  NodeSample a = make_sample(clk, 1.0, Interval{10.0, 10.2});
  clk.steer(1.01, Interval{10.5, 10.7});
  NodeSample b = make_sample(clk, 1.01, Interval{10.5, 10.7});
  std::string detail;
  EXPECT_EQ(InvariantOracle::disciplined_check(a, b, 0.0, 1e-7, &detail),
            nullptr)
      << detail;
}

TEST(DisciplineOracleTest, UninitializedPairsClaimNothing) {
  NodeSample a;
  a.lt = 0.0;
  NodeSample b;
  b.lt = 1.0;
  EXPECT_EQ(InvariantOracle::disciplined_check(a, b, 1e-4, 0.02, nullptr),
            nullptr);
}

// ---------------------------------------------------------------------------
// Golden journal: one fixed sequence pins the steering controller — kinds,
// rates, clamps, and the byte-stable rendering — so any behavior change is
// a deliberate diff against this literal.

TEST(DisciplinedClockTest, GoldenJournalIsByteStable) {
  DisciplineOptions opts;
  opts.max_slew = 5e-4;
  opts.steer_horizon = 2.0;
  opts.journal_capacity = 8;
  DisciplinedClock clk(opts);
  clk.steer(0.5, Interval::everything());        // Pre-init hold.
  clk.steer(1.0, Interval{100.0, 100.5});        // Init: snap to 100.25.
  clk.steer(2.0, Interval{101.25, 101.35});      // Small chase.
  clk.steer(3.0, Interval{104.0, 104.5});        // Saturating error.
  clk.steer(4.0, Interval::everything());        // Hold mid-chase.
  clk.steer(5.0, Interval{102.0, 108.0});        // Wide, gentle pull.
  const std::string expected =
      "{\"seq\":1,\"kind\":\"hold\",\"lt\":0.5,\"out\":0.5,\"rate\":1,"
      "\"err\":0,\"width\":\"inf\",\"clamped\":false}\n"
      "{\"seq\":2,\"kind\":\"init\",\"lt\":1,\"out\":100.25,\"rate\":1,"
      "\"err\":0,\"width\":0.5,\"clamped\":false}\n"
      "{\"seq\":3,\"kind\":\"steer\",\"lt\":2,\"out\":101.25,\"rate\":1.0005,"
      "\"err\":0.05,\"width\":0.1,\"clamped\":true}\n"
      "{\"seq\":4,\"kind\":\"steer\",\"lt\":3,\"out\":102.2505,"
      "\"rate\":1.0005,\"err\":1.9995,\"width\":0.5,\"clamped\":true}\n"
      "{\"seq\":5,\"kind\":\"hold\",\"lt\":4,\"out\":103.251,"
      "\"rate\":1.0005,\"err\":0,\"width\":\"inf\",\"clamped\":false}\n"
      "{\"seq\":6,\"kind\":\"steer\",\"lt\":5,\"out\":104.2515,"
      "\"rate\":1.0005,\"err\":0.7485,\"width\":6,\"clamped\":true}\n";
  EXPECT_EQ(clk.journal_text(), expected);
}

TEST(DisciplinedClockTest, JournalRingEvictsOldestFirst) {
  DisciplineOptions opts;
  opts.journal_capacity = 3;
  DisciplinedClock clk(opts);
  for (int i = 0; i < 7; ++i) {
    clk.steer(static_cast<double>(i), Interval{0.0, 1.0});
  }
  const std::vector<SteerDecision> j = clk.journal();
  ASSERT_EQ(j.size(), 3u);
  EXPECT_EQ(j.front().seq, 5u);
  EXPECT_EQ(j.back().seq, 7u);
}

}  // namespace
}  // namespace driftsync::clock
