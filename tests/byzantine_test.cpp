// Byzantine-peer defense suite (DESIGN.md decision 18).
//
// Core layer: OptimalCsa::screen_message grades lies (kOk / kSuspect /
// kInfeasible), attributes equivocation to the record's OWNER rather than
// an honest relay, and on_receive_validated rolls ingestion back wholesale
// when a payload that slipped past every screen still contradicts the view
// (the engine's exact constraint checks are the final authority — an
// adversarial payload must never crash or poison an honest node).
//
// Runtime layer: the Node's decaying suspicion score catches the flapping
// attacker that defeated the old consecutive-streak trigger, replay
// hardening distinguishes an honest byte-identical duplicate from a
// mutated retelling of the same dgram_seq, and readmission escalates — a
// still-lying peer pays double the feasible probes each round and is
// re-quarantined after fewer lies thanks to residual suspicion.  Attacks
// are driven by ByzantinePeer (runtime/byzantine.h), the seeded in-process
// attack actor.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/interval.h"
#include "core/csa.h"
#include "core/event.h"
#include "core/optimal_csa.h"
#include "core/spec.h"
#include "runtime/byzantine.h"
#include "runtime/chaos.h"
#include "runtime/node.h"
#include "runtime/thread_transport.h"
#include "runtime/time_source.h"
#include "test_util.h"

namespace driftsync::runtime {
namespace {

using driftsync::testing::contains_truth;
using driftsync::testing::node_config;
using driftsync::testing::two_node_spec;

// ---------------------------------------------------------------------------
// Core: screen_message / on_receive_validated

/// Victim-side fixture: one cross-validating OptimalCsa at processor 1
/// receiving hand-crafted messages "from" processor 0 over a tight 2 ms
/// link.  The honest processor-0 timeline is synthesized directly (no
/// second CSA), so a test can put a mutated copy of any record on the wire
/// while the canonical timeline stays consistent for later deliveries —
/// exactly what ByzantinePeer does in flight.
class CrossValidation : public ::testing::Test {
 protected:
  CrossValidation()
      : spec_(std::vector<ClockSpec>{{0.0}, {1e-4}},
              std::vector<LinkSpec>{{0, 1, 0.0, 0.002}}, 0) {
    OptimalCsa::Options opts;
    opts.cross_validation = true;
    victim_ = std::make_unique<OptimalCsa>(opts);
    victim_->init(spec_, 1);
  }

  /// Mints the next honest send event of processor 0 at local time `lt`.
  EventRecord mint_send(double lt) {
    EventRecord r;
    r.id = EventId{0, next_zero_seq_++};
    r.lt = lt;
    r.kind = EventKind::kSend;
    r.peer = 1;
    timeline_.push_back(r);
    return r;
  }

  /// Full-information payload: every processor-0 record so far, with the
  /// newest one's local time optionally replaced by a lie.
  CsaPayload payload_with_claim(double claimed_lt) const {
    CsaPayload p;
    p.reports = timeline_;
    p.reports.back().lt = claimed_lt;
    return p;
  }

  /// Delivers the newest send to the victim, claiming `claimed_lt` in both
  /// the header and the payload copy (a coherent lie).  Returns
  /// on_receive_validated's verdict; on rollback the victim's own event
  /// sequence is reused, mirroring the Node's un-minting.
  bool deliver(double claimed_lt, double recv_lt) {
    const CsaPayload p = payload_with_claim(claimed_lt);
    EventRecord recv;
    recv.id = EventId{1, next_recv_seq_};
    recv.lt = recv_lt;
    recv.kind = EventKind::kReceive;
    recv.peer = 0;
    recv.match = timeline_.back().id;
    EventRecord send = timeline_.back();
    send.lt = claimed_lt;
    const RecvContext ctx{1, 0, recv, send, 0};
    const bool ok = victim_->on_receive_validated(ctx, p);
    if (ok) ++next_recv_seq_;
    return ok;
  }

  /// Three honest rounds one second apart, 1 ms in transit; afterwards the
  /// victim's fused bound on processor 0's clock is ~2 ms wide.
  void warm_up() {
    for (int i = 1; i <= 3; ++i) {
      mint_send(static_cast<double>(i));
      ASSERT_TRUE(deliver(static_cast<double>(i),
                          static_cast<double>(i) + 0.001));
    }
  }

  SystemSpec spec_;
  std::unique_ptr<OptimalCsa> victim_;
  std::vector<EventRecord> timeline_;  ///< Honest processor-0 history.
  std::uint32_t next_zero_seq_ = 0;
  std::uint32_t next_recv_seq_ = 0;
};

TEST_F(CrossValidation, ScreenGradesLiesByDivergence) {
  warm_up();
  const double now = 3.002;
  const Interval peer = victim_->peer_clock_estimate(0, now);
  ASSERT_TRUE(std::isfinite(peer.hi));

  mint_send(3.5);  // True local time; only the claims below vary.

  // Honest claim inside every bound: kOk.
  const ObservationScreen ok = victim_->screen_message(
      0, now - 0.001, now, payload_with_claim(now - 0.001));
  EXPECT_EQ(ok.verdict, ObservationVerdict::kOk);
  EXPECT_EQ(ok.implicated, kInvalidProc);

  // Past the tight cross-path band but inside the generous single-edge
  // envelope: a plausible lie, graded kSuspect (renounce, never crash).
  const double suspect_lt = peer.hi + 1.1e-3;
  const ObservationScreen suspect = victim_->screen_message(
      0, suspect_lt, now, payload_with_claim(suspect_lt));
  EXPECT_EQ(suspect.verdict, ObservationVerdict::kSuspect);

  // Grossly outside the drift spec: kInfeasible (the insane-clock case the
  // historical boolean screen already caught).
  const double gross_lt = peer.hi + 0.5;
  const ObservationScreen gross = victim_->screen_message(
      0, gross_lt, now, payload_with_claim(gross_lt));
  EXPECT_EQ(gross.verdict, ObservationVerdict::kInfeasible);
}

TEST_F(CrossValidation, EquivocationOnOwnEventsIsSuspect) {
  warm_up();
  // The sender retells its newest already-known event with a shifted local
  // time: two conflicting stories about one event id, from its own owner.
  mint_send(3.5);
  CsaPayload p = payload_with_claim(3.5);
  p.reports[p.reports.size() - 2].lt += 0.01;  // Mutate known seq 2.
  const ObservationScreen s = victim_->screen_message(0, 3.5, 3.502, p);
  EXPECT_EQ(s.verdict, ObservationVerdict::kSuspect);
  EXPECT_EQ(s.implicated, 0u);
}

TEST_F(CrossValidation, ForgedOwnEventIsInfeasible) {
  warm_up();
  // A report attributed to the VICTIM that the victim never minted: no
  // conforming execution produces it.
  mint_send(3.5);
  CsaPayload p = payload_with_claim(3.5);
  EventRecord forged;
  forged.id = EventId{1, 1000};
  forged.lt = 3.4;
  forged.kind = EventKind::kInternal;
  p.reports.push_back(forged);
  const ObservationScreen s = victim_->screen_message(0, 3.5, 3.502, p);
  EXPECT_EQ(s.verdict, ObservationVerdict::kInfeasible);
}

TEST(CrossValidationRelay, RelayedEquivocationImplicatesOwnerNotCarrier) {
  // Line 0 - 1 - 2: processor 1 honestly relays processor 0's records to
  // the victim at 2.  When a relayed copy of a known processor-0 record
  // conflicts with the view, the evidence implicates 0 — the carrier's
  // message stays kOk (an honest relay must not be quarantined for
  // forwarding a liar's reports).
  SystemSpec spec(std::vector<ClockSpec>{{0.0}, {1e-4}, {1e-4}},
                  std::vector<LinkSpec>{{0, 1, 0.0, 0.002},
                                        {1, 2, 0.0, 0.002}}, 0);
  OptimalCsa::Options opts;
  opts.cross_validation = true;
  OptimalCsa victim(opts);
  victim.init(spec, 2);

  EventRecord r0;  // 0's send to 1.
  r0.id = EventId{0, 0};
  r0.lt = 1.0;
  r0.kind = EventKind::kSend;
  r0.peer = 1;
  EventRecord r1a;  // 1's matching receive.
  r1a.id = EventId{1, 0};
  r1a.lt = 1.001;
  r1a.kind = EventKind::kReceive;
  r1a.peer = 0;
  r1a.match = r0.id;
  EventRecord r1b;  // 1's send to the victim.
  r1b.id = EventId{1, 1};
  r1b.lt = 1.5;
  r1b.kind = EventKind::kSend;
  r1b.peer = 2;

  CsaPayload first;
  first.reports = {r0, r1a, r1b};
  EventRecord recv;
  recv.id = EventId{2, 0};
  recv.lt = 1.501;
  recv.kind = EventKind::kReceive;
  recv.peer = 1;
  recv.match = r1b.id;
  ASSERT_TRUE(victim.on_receive_validated(
      RecvContext{2, 1, recv, r1b, 0}, first));

  EventRecord r1c = r1b;  // 1's next send, honest.
  r1c.id = EventId{1, 2};
  r1c.lt = 2.0;
  CsaPayload second;
  second.reports = {r0, r1a, r1b, r1c};
  second.reports[0].lt += 0.01;  // Conflicting retelling of 0's event.
  const ObservationScreen s =
      victim.screen_message(1, 2.0, 2.001, second);
  EXPECT_EQ(s.verdict, ObservationVerdict::kOk);
  EXPECT_EQ(s.implicated, 0u);
}

TEST_F(CrossValidation, RollbackLeavesViewIntactAndRecovers) {
  warm_up();
  const Interval before = victim_->estimate(3.1);

  // A lie delivered straight past the screens (defense in depth: whatever
  // slips through, the engine's exact checks catch mid-merge).  +0.5 s on
  // a 2 ms link contradicts the fused offset — ingestion must fail
  // atomically instead of crashing or half-applying the batch.
  mint_send(3.5);
  EXPECT_FALSE(deliver(4.0, 3.502));
  EXPECT_EQ(victim_->stats().cross_check_failures, 1u);
  const Interval after = victim_->estimate(3.1);
  EXPECT_DOUBLE_EQ(after.lo, before.lo);
  EXPECT_DOUBLE_EQ(after.hi, before.hi);

  // The renounced event is later retold honestly; the rolled-back view
  // ingests it cleanly (no poisoned residue, no sequence gaps).
  EXPECT_TRUE(deliver(3.5, 3.5015));
  EXPECT_TRUE(std::isfinite(victim_->estimate(3.502).width()));
  EXPECT_EQ(victim_->stats().cross_check_failures, 1u);
}

// ---------------------------------------------------------------------------
// Runtime: ByzantinePeer vs the Node's suspicion machine

std::unique_ptr<Csa> defended_csa() {
  OptimalCsa::Options opts;
  opts.loss_tolerant = true;
  opts.cross_validation = true;
  return std::make_unique<OptimalCsa>(opts);
}

/// Polls `pred` every 5 ms for up to `timeout_ms`.
bool wait_until(const std::function<bool()>& pred, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 5) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

TEST(ByzantineRuntime, MutatedReplayRejectedHonestDuplicateIgnored) {
  // Node 1's seat: ByzantinePeer (mutating replayer) over a ChaosTransport
  // that duplicates byte-identically.  The victim must tell them apart:
  // honest duplicates count duplicate_dgrams and stay benign; a replay of
  // the same dgram_seq with different bytes counts replay_rejected and
  // raises suspicion.
  const SystemSpec spec = two_node_spec();
  ThreadHub hub(29);
  hub.set_link(0, 1, 0.0005, 0.003);
  Node victim(node_config(0, spec), defended_csa(),
              std::make_unique<ScaledTimeSource>(0.0, 1.0), hub.endpoint(0));

  ChaosFaults faults;
  faults.duplicate = 0.4;
  auto chaos = std::make_unique<ChaosTransport>(hub.endpoint(1), 1, faults,
                                                /*seed=*/43);
  ByzantineStrategy strat;
  strat.replay = 0.5;
  auto byz = std::make_unique<ByzantinePeer>(std::move(chaos), 1, strat,
                                             /*seed=*/44);
  Node attacker(node_config(1, spec), defended_csa(),
                std::make_unique<ScaledTimeSource>(0.0, 1.0), std::move(byz));

  victim.start();
  attacker.start();
  EXPECT_TRUE(wait_until(
      [&] {
        const NodeStats s = victim.stats();
        return s.replay_rejected >= 1 && s.duplicate_dgrams >= 1;
      },
      4000));
  const NodeStats s = victim.stats();
  EXPECT_GE(s.replay_rejected, 1u);
  EXPECT_GE(s.duplicate_dgrams, 1u);
  // The attacker's replayed timestamps never entered the view; the honest
  // direction keeps both nodes containing true source time.
  EXPECT_TRUE(contains_truth(victim));
  EXPECT_TRUE(contains_truth(attacker));
  attacker.stop();
  victim.stop();
}

TEST(ByzantineRuntime, FlappingAttackerIsQuarantined) {
  // Every 2nd message carries a gross +0.5 s lie, every other message is
  // honest.  The old consecutive-infeasible streak reset on each honest
  // message and never fired; the decaying score converges to its fixed
  // point (s + 1) * decay above the threshold and quarantines the peer.
  const SystemSpec spec = two_node_spec();
  ThreadHub hub(31);
  hub.set_link(0, 1, 0.0005, 0.003);
  Node victim(node_config(0, spec), defended_csa(),
              std::make_unique<ScaledTimeSource>(0.0, 1.0), hub.endpoint(0));

  ByzantineStrategy strat;
  strat.flip_every = 2;
  strat.flip_offset = 0.5;
  auto byz = std::make_unique<ByzantinePeer>(hub.endpoint(1), 1, strat,
                                             /*seed=*/45);
  Node attacker(node_config(1, spec), defended_csa(),
                std::make_unique<ScaledTimeSource>(0.0, 1.0), std::move(byz));

  victim.start();
  attacker.start();
  EXPECT_TRUE(wait_until(
      [&] { return victim.stats().peer_quarantines >= 1; }, 4000));
  const NodeStats s = victim.stats();
  EXPECT_GE(s.infeasible_rejected, 2u);
  ASSERT_EQ(s.quarantined.size(), 1u);
  EXPECT_EQ(s.quarantined[0], 1u);
  EXPECT_TRUE(contains_truth(victim));
  attacker.stop();
  victim.stop();
}

TEST(ByzantineRuntime, ReadmissionEscalatesAgainstRepeatOffender) {
  // Phase 1: constant gross lies -> quarantined after `threshold` lies.
  // Phase 2: the attacker goes honest; after `threshold` feasible probes
  // it is readmitted — and the NEXT readmission now costs double.
  // Phase 3: it resumes lying; residual suspicion re-quarantines it after
  // FEWER lies than the first time.
  const SystemSpec spec = two_node_spec();
  ThreadHub hub(37);
  hub.set_link(0, 1, 0.0005, 0.003);
  NodeConfig victim_cfg = node_config(0, spec);
  victim_cfg.quarantine_threshold = 4;
  Node victim(victim_cfg, defended_csa(),
              std::make_unique<ScaledTimeSource>(0.0, 1.0), hub.endpoint(0));

  // A steep skew ramp: a CONSTANT offset would be a perfectly legal clock
  // (the spec constrains rate, not phase) and a slow ramp ratchets inside
  // the per-message transit headroom — only a ramp outrunning
  // (transit width + slack) per message is renounced every time, which is
  // what phases 1 and 3 need.
  ByzantineStrategy strat;
  strat.skew_rate = 0.5;
  strat.skew_max = 100.0;
  auto byz = std::make_unique<ByzantinePeer>(hub.endpoint(1), 1, strat,
                                             /*seed=*/47);
  ByzantinePeer* attacker_hand = byz.get();
  // Slow attacker cadence: the test reacts between messages, so at most
  // one honest message decays the residual suspicion before phase 3.
  NodeConfig attacker_cfg = node_config(1, spec, /*poll_period=*/0.15);
  Node attacker(attacker_cfg, defended_csa(),
                std::make_unique<ScaledTimeSource>(0.0, 1.0), std::move(byz));

  victim.start();
  attacker.start();

  // Phase 1: quarantine at the configured threshold.
  ASSERT_TRUE(wait_until(
      [&] { return victim.stats().peer_quarantines >= 1; }, 8000));
  {
    const NodeStats s = victim.stats();
    ASSERT_EQ(s.quarantined.size(), 1u);
    EXPECT_EQ(s.readmission_cost.at(1), 4u);  // First readmission price.
  }

  // Phase 2: honesty buys readmission, at escalating cost.
  attacker_hand->set_active(false);
  ASSERT_TRUE(wait_until(
      [&] { return victim.stats().peer_readmissions >= 1; }, 8000));
  const NodeStats readmitted = victim.stats();
  EXPECT_TRUE(readmitted.quarantined.empty());
  EXPECT_EQ(readmitted.readmission_cost.at(1), 8u);  // Doubled.
  EXPECT_GT(readmitted.suspicion.at(1), 0.0);  // Residual suspicion.

  // Phase 3: resumed lying is caught faster than the first offense.
  attacker_hand->set_active(true);
  ASSERT_TRUE(wait_until(
      [&] { return victim.stats().peer_quarantines >= 2; }, 8000));
  const NodeStats again = victim.stats();
  const std::uint64_t lies_this_round =
      again.infeasible_rejected - readmitted.infeasible_rejected;
  EXPECT_LE(lies_this_round, 3u);  // < threshold (4) thanks to residual.
  EXPECT_TRUE(contains_truth(victim));
  attacker.stop();
  victim.stop();
}

TEST(ByzantineRuntime, LeaveAndRejoinDoesNotInheritOldSuspicion) {
  // The fixed-peer-set bug class (DESIGN.md decision 19): peer health
  // lived in maps keyed by ProcId with no notion of "this seat was
  // vacated" — a quarantined peer that left and rejoined inherited the
  // old decayed suspicion and the doubled readmission price, so a fresh
  // incarnation at a recycled ProcId started life half-convicted.
  // Retirement must drop the health state with the seat: a rejoin gets a
  // clean score, the threshold-priced readmission, and flowing traffic.
  const SystemSpec spec = two_node_spec();
  ThreadHub hub(41);
  hub.set_link(0, 1, 0.0005, 0.003);
  NodeConfig victim_cfg = node_config(0, spec);
  victim_cfg.quarantine_threshold = 4;
  Node victim(victim_cfg, defended_csa(),
              std::make_unique<ScaledTimeSource>(0.0, 1.0), hub.endpoint(0));

  // Constant steep skew: every message renounced, so the quarantine holds
  // (no feasible probes, no racing readmission) until the test acts.
  ByzantineStrategy strat;
  strat.skew_rate = 0.5;
  strat.skew_max = 100.0;
  auto byz = std::make_unique<ByzantinePeer>(hub.endpoint(1), 1, strat,
                                             /*seed=*/49);
  ByzantinePeer* attacker_hand = byz.get();
  Node attacker(node_config(1, spec), defended_csa(),
                std::make_unique<ScaledTimeSource>(0.0, 1.0), std::move(byz));

  victim.start();
  attacker.start();
  ASSERT_TRUE(wait_until(
      [&] { return victim.stats().peer_quarantines >= 1; }, 8000));
  {
    const NodeStats s = victim.stats();
    ASSERT_EQ(s.quarantined.size(), 1u);
    EXPECT_GT(s.suspicion.at(1), 0.0);
    EXPECT_EQ(s.readmission_cost.at(1), 4u);
  }

  // The convict leaves (and turns honest for its next incarnation).
  attacker_hand->set_active(false);
  victim.remove_peer(1);
  {
    const NodeStats s = victim.stats();
    EXPECT_EQ(s.peer_leaves, 1u);
    EXPECT_TRUE(s.quarantined.empty());
    EXPECT_EQ(s.suspicion.count(1), 0u);  // No seat, no health state.
    EXPECT_EQ(s.peers_journaled, 1u);     // Wire frontier retained.
  }

  // Rejoin: a fresh seat, not a readmission — zero suspicion, the
  // original threshold price, no lingering quarantine flag.
  victim.admit_peer(1);
  {
    const NodeStats s = victim.stats();
    EXPECT_EQ(s.peer_joins, 1u);
    EXPECT_TRUE(s.quarantined.empty());
    EXPECT_EQ(s.suspicion.at(1), 0.0);
    EXPECT_EQ(s.readmission_cost.at(1), 4u);  // Not doubled.
    EXPECT_EQ(s.peer_readmissions, 0u);
    EXPECT_EQ(s.peers_journaled, 0u);
  }

  // The now-honest peer is actually heard again through the new seat.
  EXPECT_TRUE(wait_until(
      [&] {
        const NodeStats s = victim.stats();
        const auto it = s.last_heard.find(1);
        return it != s.last_heard.end() && it->second >= 0.0;
      },
      4000));
  EXPECT_TRUE(contains_truth(victim));
  attacker.stop();
  victim.stop();
}

}  // namespace
}  // namespace driftsync::runtime
