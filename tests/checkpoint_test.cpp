// Tests for checkpoint/restore of the optimal CSA: a restored instance must
// be indistinguishable from one that never restarted.  The Node-level suite
// at the bottom covers the membership dimension of the image (DESIGN.md
// decision 19): a checkpoint written under one roster restoring under
// another.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <thread>

#include "common/errors.h"
#include "common/rng.h"
#include "core/optimal_csa.h"
#include "runtime/node.h"
#include "runtime/thread_transport.h"
#include "runtime/time_source.h"
#include "test_util.h"

namespace driftsync {
namespace {

using testing::EventFactory;
using testing::line_spec;

/// Drives proc 0 (source) and proc 1 (client) through `rounds` exchanges,
/// feeding identical contexts to every CSA in `clients`; used to keep an
/// original and a restored instance in lockstep.
struct TwoNodeDriver {
  explicit TwoNodeDriver(const SystemSpec& spec_in)
      : spec(spec_in), fac(2) {
    source.init(spec, 0);
  }

  void round(std::vector<OptimalCsa*> clients, double t) {
    // Client probes source; source replies.
    const EventRecord probe = fac.send(1, 100.0 + t, 0);
    std::vector<CsaPayload> probe_payloads;
    for (OptimalCsa* c : clients) {
      probe_payloads.push_back(c->on_send(SendContext{1, 0, probe, 1}));
    }
    const EventRecord preq = fac.receive(0, t + 0.01, probe);
    source.on_receive(RecvContext{0, 1, preq, probe, 1}, probe_payloads[0]);
    const EventRecord resp = fac.send(0, t + 0.02, 1);
    const CsaPayload resp_payload =
        source.on_send(SendContext{0, 1, resp, 2});
    const EventRecord rresp = fac.receive(1, 100.0 + t + 0.03, resp);
    for (OptimalCsa* c : clients) {
      c->on_receive(RecvContext{1, 0, rresp, resp, 2}, resp_payload);
    }
    now = 100.0 + t + 0.03;
  }

  const SystemSpec& spec;
  EventFactory fac;
  OptimalCsa source;
  LocalTime now = 0.0;
};

TEST(CheckpointTest, RestoredInstanceContinuesIdentically) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.002, 0.03);
  TwoNodeDriver driver(spec);
  OptimalCsa original;
  original.init(spec, 1);
  for (int i = 0; i < 5; ++i) driver.round({&original}, 1.0 + i);

  // Snapshot, restore into a fresh instance.
  const auto bytes = original.checkpoint();
  OptimalCsa restored;
  restored.init(spec, 1);
  restored.restore(bytes);

  // Identical immediately...
  EXPECT_TRUE(intervals_close(restored.estimate(driver.now),
                              original.estimate(driver.now), 1e-12));
  EXPECT_EQ(restored.engine().live_points(),
            original.engine().live_points());
  EXPECT_EQ(restored.history().history_size(),
            original.history().history_size());

  // ... and through ten more rounds of identical traffic.
  for (int i = 0; i < 10; ++i) {
    driver.round({&original, &restored}, 10.0 + i);
    const Interval a = original.estimate(driver.now);
    const Interval b = restored.estimate(driver.now);
    EXPECT_TRUE(intervals_close(a, b, 1e-12)) << a.str() << " vs " << b.str();
    EXPECT_EQ(restored.engine().live_points(),
              original.engine().live_points());
  }
}

TEST(CheckpointTest, SaveLoadSaveIsIdentity) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.002, 0.03);
  TwoNodeDriver driver(spec);
  OptimalCsa original;
  original.init(spec, 1);
  for (int i = 0; i < 4; ++i) driver.round({&original}, 1.0 + i);
  const auto bytes = original.checkpoint();
  OptimalCsa restored;
  restored.init(spec, 1);
  restored.restore(bytes);
  EXPECT_EQ(restored.checkpoint(), bytes);
}

TEST(CheckpointTest, EmptyStateRoundTrips) {
  const SystemSpec spec = line_spec(3, 1e-4, 0.0, 1.0);
  OptimalCsa fresh;
  fresh.init(spec, 2);
  const auto bytes = fresh.checkpoint();
  OptimalCsa restored;
  restored.init(spec, 2);
  restored.restore(bytes);
  EXPECT_EQ(restored.estimate(5.0), Interval::everything());
  EXPECT_EQ(restored.checkpoint(), bytes);
}

TEST(CheckpointTest, WrongProcessorRejected) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.002, 0.03);
  OptimalCsa a;
  a.init(spec, 1);
  const auto bytes = a.checkpoint();
  OptimalCsa b;
  b.init(spec, 0);
  EXPECT_THROW(b.restore(bytes), CheckpointError);
}

TEST(CheckpointTest, WrongSystemRejected) {
  const SystemSpec small = line_spec(2, 1e-4, 0.002, 0.03);
  const SystemSpec big = line_spec(4, 1e-4, 0.002, 0.03);
  OptimalCsa a;
  a.init(small, 1);
  const auto bytes = a.checkpoint();
  OptimalCsa b;
  b.init(big, 1);
  EXPECT_THROW(b.restore(bytes), CheckpointError);
}

TEST(CheckpointTest, TruncationRejected) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.002, 0.03);
  TwoNodeDriver driver(spec);
  OptimalCsa a;
  a.init(spec, 1);
  driver.round({&a}, 1.0);
  auto bytes = a.checkpoint();
  bytes.resize(bytes.size() / 2);
  OptimalCsa b;
  b.init(spec, 1);
  EXPECT_THROW(b.restore(bytes), CheckpointError);
}

TEST(CheckpointTest, TrailingBytesRejected) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.002, 0.03);
  OptimalCsa a;
  a.init(spec, 1);
  auto bytes = a.checkpoint();
  bytes.push_back(0);
  OptimalCsa b;
  b.init(spec, 1);
  EXPECT_THROW(b.restore(bytes), CheckpointError);
}

TEST(CheckpointTest, FailedRestoreLeavesInstanceUnmodified) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.002, 0.03);
  TwoNodeDriver driver(spec);
  OptimalCsa original;
  original.init(spec, 1);
  for (int i = 0; i < 3; ++i) driver.round({&original}, 1.0 + i);
  const auto bytes = original.checkpoint();

  OptimalCsa target;
  target.init(spec, 1);
  // Sample single-byte corruptions across the whole image: each attempt
  // must either throw the recoverable CheckpointError (anything else —
  // notably a DS_CHECK logic_error — fails the test) or accept a state the
  // engine can still query.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0xff;
    OptimalCsa probe;
    probe.init(spec, 1);
    try {
      probe.restore(bad);
      (void)probe.estimate(std::numeric_limits<double>::max());
    } catch (const CheckpointError&) {
      // Rejected: the failed load must have left the instance pristine.
      EXPECT_EQ(probe.engine().live_count(), 0u) << "byte " << i;
      EXPECT_EQ(probe.history().history_size(), 0u) << "byte " << i;
      probe.restore(bytes);  // still a usable fresh instance
      EXPECT_EQ(probe.checkpoint(), bytes) << "byte " << i;
    }
  }

  // Truncation mid-image: target stays fresh and then accepts the good one.
  auto truncated = bytes;
  truncated.resize(bytes.size() - 3);
  EXPECT_THROW(target.restore(truncated), CheckpointError);
  EXPECT_EQ(target.engine().live_count(), 0u);
  EXPECT_EQ(target.history().history_size(), 0u);
  target.restore(bytes);
  EXPECT_TRUE(intervals_close(target.estimate(driver.now),
                              original.estimate(driver.now), 1e-12));
}

/// Round-trip property on randomized engine states: random round counts,
/// random inter-round gaps, interleaved internal events; checkpoint →
/// restore → checkpoint must be the identity and the restored instance must
/// stay in lockstep with the original under further traffic.
class CheckpointPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointPropertyTest, RandomizedStatesRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * std::uint64_t{0x9E3779B97F4A7C15} + 11);
  const SystemSpec spec = line_spec(2, 1e-4, 0.002, 0.03);
  TwoNodeDriver driver(spec);
  OptimalCsa original;
  original.init(spec, 1);
  const int rounds = static_cast<int>(rng.uniform_index(8));
  double t = 1.0;
  for (int i = 0; i < rounds; ++i) {
    t += rng.uniform(0.05, 2.0);
    driver.round({&original}, t);
    if (rng.flip(0.3)) {
      driver.now += 0.001;
      original.on_internal(driver.fac.internal(1, driver.now));
    }
  }

  const auto bytes = original.checkpoint();
  OptimalCsa restored;
  restored.init(spec, 1);
  restored.restore(bytes);
  EXPECT_EQ(restored.checkpoint(), bytes);
  const LocalTime q = driver.now + rng.uniform(0.0, 1.0);
  EXPECT_TRUE(
      intervals_close(restored.estimate(q), original.estimate(q), 1e-12));
  EXPECT_EQ(restored.engine().live_points(), original.engine().live_points());

  t += rng.uniform(0.05, 2.0);
  driver.round({&original, &restored}, t);
  EXPECT_TRUE(intervals_close(restored.estimate(driver.now),
                              original.estimate(driver.now), 1e-12));
  EXPECT_EQ(restored.engine().live_points(), original.engine().live_points());
}

INSTANTIATE_TEST_SUITE_P(RandomizedStates, CheckpointPropertyTest,
                         ::testing::Range(0, 25));

TEST(CheckpointTest, LossTolerantStateRoundTrips) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.002, 0.03);
  OptimalCsa::Options opts;
  opts.loss_tolerant = true;
  OptimalCsa a(opts);
  a.init(spec, 1);
  EventFactory fac(2);
  // One unresolved outstanding send (pending snapshot held).
  const EventRecord s = fac.send(1, 50.0, 0);
  a.on_send(SendContext{1, 0, s, 1});
  const auto bytes = a.checkpoint();
  OptimalCsa b(opts);
  b.init(spec, 1);
  b.restore(bytes);
  EXPECT_EQ(b.checkpoint(), bytes);
  // The restored instance can resolve the pending fate.
  b.on_delivery_confirmed(0);
}

// ---------------------------------------------------------------------------
// Node-level checkpoint × membership roster (DESIGN.md decision 19)

/// ctest runs from the build tree; keep checkpoint files CWD-relative and
/// clean them up so reruns start fresh.
struct CheckpointFile {
  std::string path;
  explicit CheckpointFile(const std::string& name) : path(name) {
    std::remove(path.c_str());
  }
  ~CheckpointFile() { std::remove(path.c_str()); }
};

/// Regression: a checkpoint written under roster {0, 2} restored under
/// roster {0} was rejected outright ("checkpoint names an unconfigured
/// peer"), so shrinking a deployment made every surviving node refuse to
/// boot.  The fixed load is transactional on the intersection: in-roster
/// peers restore as active, the rest are journaled — wire frontier kept
/// for a sound later rejoin, never resurrected, never a rejection.
TEST(NodeCheckpointRoster, SmallerRosterLoadsIntersectionAndJournalsRest) {
  const CheckpointFile ckpt("checkpoint_test_roster.ckpt");
  const SystemSpec spec = testing::line_spec(3, 5e-4, 0.0, 0.05);
  runtime::ThreadHub hub(7);
  hub.set_link(0, 1, 0.0005, 0.003);

  auto make = [&](std::vector<ProcId> roster) {
    runtime::NodeConfig cfg = testing::node_config(1, spec);
    cfg.peers = std::move(roster);
    cfg.checkpoint_path = ckpt.path;
    return std::make_unique<runtime::Node>(
        std::move(cfg), testing::loss_tolerant_csa(),
        std::make_unique<runtime::ScaledTimeSource>(3.0, 1.0),
        hub.endpoint(1));
  };

  // The source keeps running across every node-1 restart, so own events
  // (and thus checkpoints) keep flowing in each phase.
  runtime::NodeConfig cfg0 = testing::node_config(0, spec);
  cfg0.peers = {1};
  runtime::Node source(std::move(cfg0), testing::loss_tolerant_csa(),
                       std::make_unique<runtime::ScaledTimeSource>(0.0, 1.0),
                       hub.endpoint(0));
  source.start();

  auto node = make({0, 2});
  node->start();
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  ASSERT_GT(node->stats().checkpoints_written, 0u);
  node->stop();
  node.reset();

  // Peer 2 dropped from the roster: the image must load (intersection),
  // with peer 2's entry journaled rather than active or lost.
  auto shrunk = make({0});
  ASSERT_NO_THROW(shrunk->start());
  EXPECT_EQ(shrunk->stats().peers_journaled, 1u);
  EXPECT_NE(shrunk->stats_json().find("\"membership_journal\":1"),
            std::string::npos);
  // Run long enough to write a v2 image carrying the journaled entry.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  ASSERT_GT(shrunk->stats().checkpoints_written, 0u);
  shrunk->stop();
  shrunk.reset();

  // Growing back to the full roster reactivates the journaled frontier:
  // nothing stays journaled, nothing was forgotten in between.
  auto full = make({0, 2});
  ASSERT_NO_THROW(full->start());
  EXPECT_EQ(full->stats().peers_journaled, 0u);
  full->stop();
  source.stop();
}

}  // namespace
}  // namespace driftsync
