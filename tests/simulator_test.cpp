// Tests for the discrete-event simulator: determinism, transit-bound
// respect, FIFO links, timers, event records, the loss-detection mechanism
// and instrumentation.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/optimal_csa.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace driftsync::sim {
namespace {

using testing::line_spec;

/// App that sends `count` messages to a fixed peer at fixed local intervals.
class PingApp : public App {
 public:
  PingApp(ProcId peer, int count, Duration gap)
      : peer_(peer), count_(count), gap_(gap) {}
  void on_start(NodeApi& api) override {
    if (count_ > 0) api.set_timer(gap_, 1);
  }
  void on_timer(NodeApi& api, std::uint32_t) override {
    api.send(peer_, 42);
    if (--count_ > 0) api.set_timer(gap_, 1);
  }

 private:
  ProcId peer_;
  int count_;
  Duration gap_;
};

class NullApp : public App {};

/// CSA that records everything it sees (for white-box assertions).
class RecordingCsa : public Csa {
 public:
  void init(const SystemSpec&, ProcId self) override { self_ = self; }
  CsaPayload on_send(const SendContext& ctx) override {
    sends.push_back(ctx);
    CsaPayload p;
    p.scalars = {static_cast<double>(self_)};
    return p;
  }
  void on_receive(const RecvContext& ctx, const CsaPayload& pl) override {
    recvs.push_back(ctx);
    payloads.push_back(pl);
  }
  void on_internal(const EventRecord& e) override { internals.push_back(e); }
  void on_delivery_confirmed(ProcId dest) override {
    confirmed.push_back(dest);
  }
  Interval estimate(LocalTime) const override {
    return Interval::everything();
  }
  const char* name() const override { return "recording"; }

  ProcId self_ = kInvalidProc;
  std::vector<SendContext> sends;
  std::vector<RecvContext> recvs;
  std::vector<CsaPayload> payloads;
  std::vector<EventRecord> internals;
  std::vector<ProcId> confirmed;
};

struct Rig {
  explicit Rig(SystemSpec spec, std::vector<LinkRuntime> links,
               SimConfig config = {})
      : sim(std::move(spec), std::move(links), config) {}

  RecordingCsa* attach(ProcId p, std::unique_ptr<App> app,
                       ClockModel clock = ClockModel::constant(0.0, 1.0)) {
    auto csa = std::make_unique<RecordingCsa>();
    RecordingCsa* raw = csa.get();
    std::vector<std::unique_ptr<Csa>> csas;
    csas.push_back(std::move(csa));
    sim.attach_node(p, std::move(clock), std::move(app), std::move(csas));
    return raw;
  }

  Simulator sim;
};

SimConfig traced() {
  SimConfig c;
  c.record_trace = true;
  return c;
}

TEST(SimulatorTest, DeliversWithinDeclaredBounds) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.01, 0.05);
  Rig rig(spec, {LinkRuntime{LatencyModel::uniform(0.01, 0.05), 0.0}},
          traced());
  rig.attach(0, std::make_unique<PingApp>(1, 50, 0.1));
  auto* c1 = rig.attach(1, std::make_unique<NullApp>());
  rig.sim.run_until(10.0);
  ASSERT_EQ(c1->recvs.size(), 50u);
  // Ground truth transit from the trace.
  std::map<std::uint64_t, RealTime> send_rt;
  for (const TraceEntry& te : rig.sim.trace()) {
    if (te.record.kind == EventKind::kSend) {
      send_rt[te.record.id.pack()] = te.rt;
    } else if (te.record.kind == EventKind::kReceive) {
      const double transit = te.rt - send_rt.at(te.record.match.pack());
      EXPECT_GE(transit, 0.01 - 1e-12);
      EXPECT_LE(transit, 0.05 + 1e-12);
    }
  }
}

TEST(SimulatorTest, FifoPerLinkDirection) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 1.0);
  Rig rig(spec, {LinkRuntime{LatencyModel::uniform(0.0, 1.0), 0.0}});
  rig.attach(0, std::make_unique<PingApp>(1, 100, 0.01));
  auto* c1 = rig.attach(1, std::make_unique<NullApp>());
  rig.sim.run_until(20.0);
  ASSERT_EQ(c1->recvs.size(), 100u);
  // Receives must arrive in send order despite random latencies.
  for (std::size_t i = 1; i < c1->recvs.size(); ++i) {
    EXPECT_EQ(c1->recvs[i].send_event.id.seq,
              c1->recvs[i - 1].send_event.id.seq + 1);
  }
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  const auto run = [](std::uint64_t seed) {
    SimConfig cfg = traced();
    cfg.seed = seed;
    const SystemSpec spec = line_spec(3, 1e-4, 0.001, 0.02);
    Rig rig(spec,
            {LinkRuntime{LatencyModel::uniform(0.001, 0.02), 0.0},
             LinkRuntime{LatencyModel::uniform(0.001, 0.02), 0.0}},
            cfg);
    rig.attach(0, std::make_unique<PingApp>(1, 20, 0.05));
    rig.attach(1, std::make_unique<PingApp>(2, 20, 0.07));
    rig.attach(2, std::make_unique<NullApp>());
    rig.sim.run_until(5.0);
    std::vector<std::pair<std::uint64_t, RealTime>> sig;
    for (const TraceEntry& te : rig.sim.trace()) {
      sig.emplace_back(te.record.id.pack(), te.rt);
    }
    return sig;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimulatorTest, EventRecordsWellFormed) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.1);
  Rig rig(spec, {LinkRuntime{LatencyModel::fixed(0.05), 0.0}}, traced());
  rig.attach(0, std::make_unique<PingApp>(1, 3, 0.2));
  rig.attach(1, std::make_unique<NullApp>(),
             ClockModel::constant(500.0, 1.0001));
  rig.sim.run_until(2.0);
  std::map<ProcId, std::uint32_t> next_seq;
  for (const TraceEntry& te : rig.sim.trace()) {
    EXPECT_EQ(te.record.id.seq, next_seq[te.record.id.proc]++);
    if (te.record.kind == EventKind::kReceive) {
      EXPECT_EQ(te.record.match.proc, te.record.peer);
    }
  }
  EXPECT_EQ(rig.sim.total_events(), rig.sim.trace().size());
  EXPECT_EQ(rig.sim.messages_sent(), 3u);
}

TEST(SimulatorTest, LocalTimersFollowTheLocalClock) {
  // A clock running at rate 2 fires a local 1.0s timer after 0.5 real secs.
  const SystemSpec spec({ClockSpec{0.0}, ClockSpec{0.5}},
                        {LinkSpec{0, 1, 0.0, 1.0}}, 0);
  SimConfig cfg = traced();
  Rig rig(spec, {LinkRuntime{LatencyModel::fixed(0.5), 0.0}}, cfg);
  rig.attach(0, std::make_unique<NullApp>());
  rig.attach(1, std::make_unique<PingApp>(0, 1, 1.0),
             ClockModel::constant(0.0, 1.5));
  rig.sim.run_until(5.0);
  ASSERT_FALSE(rig.sim.trace().empty());
  const TraceEntry& send = rig.sim.trace().front();
  EXPECT_EQ(send.record.kind, EventKind::kSend);
  EXPECT_NEAR(send.rt, 1.0 / 1.5, 1e-12);
  EXPECT_NEAR(send.record.lt, 1.0, 1e-12);
}

TEST(SimulatorTest, PayloadsRoutedPerCsa) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.1);
  Rig rig(spec, {LinkRuntime{LatencyModel::fixed(0.01), 0.0}});
  rig.attach(0, std::make_unique<PingApp>(1, 1, 0.1));
  auto* c1 = rig.attach(1, std::make_unique<NullApp>());
  rig.sim.run_until(1.0);
  ASSERT_EQ(c1->payloads.size(), 1u);
  ASSERT_EQ(c1->payloads[0].scalars.size(), 1u);
  EXPECT_EQ(c1->payloads[0].scalars[0], 0.0);  // filled by proc 0's CSA
  EXPECT_EQ(c1->recvs[0].app_tag, 42u);
}

TEST(SimulatorTest, AttachValidation) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.1);
  Rig rig(spec, {LinkRuntime{LatencyModel::fixed(0.01), 0.0}});
  // Clock drifting beyond the spec bound is rejected.
  EXPECT_THROW(rig.attach(1, std::make_unique<NullApp>(),
                          ClockModel::constant(0.0, 1.01)),
               std::logic_error);
  rig.attach(0, std::make_unique<NullApp>());
  EXPECT_THROW(rig.attach(0, std::make_unique<NullApp>()), std::logic_error);
}

TEST(SimulatorTest, RunRequiresAllNodesAttached) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.1);
  Rig rig(spec, {LinkRuntime{LatencyModel::fixed(0.01), 0.0}});
  rig.attach(0, std::make_unique<NullApp>());
  EXPECT_THROW(rig.sim.run_until(1.0), std::logic_error);
}

TEST(SimulatorTest, LatencyModelMustRespectSpec) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.01, 0.02);
  EXPECT_THROW(
      Simulator(spec, {LinkRuntime{LatencyModel::uniform(0.0, 0.05), 0.0}},
                SimConfig{}),
      std::logic_error);
}

TEST(SimulatorTest, LossRequiresDetection) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.1);
  EXPECT_THROW(
      Simulator(spec, {LinkRuntime{LatencyModel::fixed(0.01), 0.5}},
                SimConfig{}),
      std::logic_error);
}

TEST(SimulatorTest, LossProducesDeclarationsAndConfirmations) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.1);
  SimConfig cfg = traced();
  cfg.detection_timeout = 0.5;
  Rig rig(spec, {LinkRuntime{LatencyModel::fixed(0.01), 0.4}}, cfg);
  // Send gap (0.6) exceeds the detection timeout: no stop-and-wait queuing.
  auto* c0 = rig.attach(0, std::make_unique<PingApp>(1, 200, 0.6));
  auto* c1 = rig.attach(1, std::make_unique<NullApp>());
  rig.sim.run_until(130.0);
  EXPECT_EQ(rig.sim.messages_sent(), 200u);
  const std::size_t lost = rig.sim.messages_lost();
  EXPECT_GT(lost, 40u);
  EXPECT_LT(lost, 140u);
  EXPECT_EQ(c1->recvs.size(), 200u - lost);
  // Every lost message produced a kLossDecl at the sender, every delivered
  // one a confirmation.
  EXPECT_EQ(c0->internals.size(), lost);
  for (const EventRecord& e : c0->internals) {
    EXPECT_EQ(e.kind, EventKind::kLossDecl);
    EXPECT_EQ(e.peer, 1u);
  }
  EXPECT_EQ(c0->confirmed.size(), 200u - lost);
}

TEST(SimulatorTest, LossDeclTimingAfterDetectionTimeout) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.1);
  SimConfig cfg = traced();
  cfg.detection_timeout = 0.5;
  Rig rig(spec, {LinkRuntime{LatencyModel::fixed(0.01), 0.9}}, cfg);
  rig.attach(0, std::make_unique<PingApp>(1, 5, 0.7));
  rig.attach(1, std::make_unique<NullApp>());
  rig.sim.run_until(10.0);
  std::map<std::uint64_t, RealTime> send_rt;
  for (const TraceEntry& te : rig.sim.trace()) {
    if (te.record.kind == EventKind::kSend) {
      send_rt[te.record.id.pack()] = te.rt;
    } else if (te.record.kind == EventKind::kLossDecl) {
      EXPECT_NEAR(te.rt - send_rt.at(te.record.match.pack()), 0.5, 1e-9);
    }
  }
}

TEST(SimulatorTest, StopAndWaitSerializesPerDirection) {
  // With the detection mechanism on, sends faster than the timeout queue in
  // the link layer: consecutive send events on one direction are spaced by
  // at least the detection timeout (the Section 3.3 refined assumption).
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.1);
  SimConfig cfg = traced();
  cfg.detection_timeout = 0.5;
  Rig rig(spec, {LinkRuntime{LatencyModel::fixed(0.01), 0.2}}, cfg);
  rig.attach(0, std::make_unique<PingApp>(1, 20, 0.05));
  rig.attach(1, std::make_unique<NullApp>());
  rig.sim.run_until(30.0);
  EXPECT_EQ(rig.sim.messages_sent(), 20u);
  RealTime prev_send = -1.0;
  for (const TraceEntry& te : rig.sim.trace()) {
    if (te.record.kind != EventKind::kSend) continue;
    if (prev_send >= 0.0) {
      EXPECT_GE(te.rt - prev_send, 0.5 - 1e-9);
    }
    prev_send = te.rt;
  }
}

TEST(SimulatorTest, StopAndWaitOffWithoutDetection) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.1);
  Rig rig(spec, {LinkRuntime{LatencyModel::fixed(0.01), 0.0}}, traced());
  rig.attach(0, std::make_unique<PingApp>(1, 20, 0.05));
  rig.attach(1, std::make_unique<NullApp>());
  rig.sim.run_until(5.0);
  // All 20 sends happen at app cadence (no serialization).
  EXPECT_EQ(rig.sim.messages_sent(), 20u);
  std::size_t sends_before_2s = 0;
  for (const TraceEntry& te : rig.sim.trace()) {
    if (te.record.kind == EventKind::kSend && te.rt < 1.5) ++sends_before_2s;
  }
  EXPECT_GE(sends_before_2s, 20u);
}

TEST(SimulatorTest, ObserverProbesAtCadence) {
  struct CountingObserver : SimObserver {
    int probes = 0;
    int events = 0;
    void on_probe(Simulator&, RealTime) override { ++probes; }
    void on_event(Simulator&, const EventRecord&, RealTime) override {
      ++events;
    }
  };
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.1);
  SimConfig cfg;
  cfg.probe_interval = 0.25;
  Rig rig(spec, {LinkRuntime{LatencyModel::fixed(0.01), 0.0}}, cfg);
  rig.attach(0, std::make_unique<PingApp>(1, 4, 0.1));
  rig.attach(1, std::make_unique<NullApp>());
  CountingObserver obs;
  rig.sim.set_observer(&obs);
  rig.sim.run_until(2.0);
  EXPECT_EQ(obs.probes, 8);
  EXPECT_EQ(obs.events, 8);  // 4 sends + 4 receives
}

TEST(SimulatorTest, ObservedK1OnBusySystem) {
  const SystemSpec spec = line_spec(3, 1e-4, 0.0, 0.1);
  Rig rig(spec,
          {LinkRuntime{LatencyModel::fixed(0.01), 0.0},
           LinkRuntime{LatencyModel::fixed(0.01), 0.0}});
  rig.attach(0, std::make_unique<PingApp>(1, 300, 0.01));
  rig.attach(1, std::make_unique<NullApp>());
  rig.attach(2, std::make_unique<PingApp>(1, 2, 1.0));
  rig.sim.run_until(5.0);
  // Proc 2 is slow: many system events fit between its two sends.
  EXPECT_GT(rig.sim.observed_k1(), 50u);
}

}  // namespace
}  // namespace driftsync::sim
