// Edge cases and numerically extreme scenarios: degenerate systems (one
// node, two nodes, zero-latency links), simultaneous events, huge clock
// offsets, high drift, and very tight transit bounds.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/full_view_csa.h"
#include "core/optimal_csa.h"
#include "core/sync_engine.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workloads/apps.h"
#include "workloads/topology.h"

namespace driftsync {
namespace {

using testing::EventFactory;
using testing::line_spec;

TEST(ExtremeTest, SingleProcessorSystem) {
  // A system of just the source: estimates are exact from the first event.
  const SystemSpec spec({ClockSpec{0.0}}, {}, 0);
  SyncEngine engine(spec, 0);
  EventFactory fac(1);
  engine.ingest(fac.internal(0, 7.0));
  EXPECT_TRUE(intervals_close(engine.estimate(9.0), Interval::point(9.0)));
}

TEST(ExtremeTest, ZeroWidthTransitBound) {
  // A link with exact transit (l == u): one message synchronizes perfectly
  // at the receive instant (for a drift-free receiver).
  const SystemSpec spec = line_spec(2, 0.0, 0.5, 0.5);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 300.0, s);
  engine.ingest(s);
  engine.ingest(r);
  EXPECT_TRUE(intervals_close(engine.estimate(300.0),
                              Interval::point(10.5)));
}

TEST(ExtremeTest, SimultaneousEventsAtOneProcessor) {
  // Two events with identical local times (e.g. two sends in one handler):
  // zero-weight drift edges, nothing breaks.
  const SystemSpec spec = line_spec(3, 1e-4, 0.0, 1.0);
  SyncEngine engine(spec, 1);
  EventFactory fac(3);
  const EventRecord s1 = fac.send(1, 5.0, 0);
  const EventRecord s2 = fac.send(1, 5.0, 2);
  engine.ingest(s1);
  engine.ingest(s2);
  EXPECT_EQ(engine.live_count(), 2u);
  EXPECT_TRUE(
      intervals_close(engine.rt_difference_bounds(s2.id, s1.id),
                      Interval::point(0.0)));
}

TEST(ExtremeTest, HugeClockOffsetsKeepPrecision) {
  // Offsets of ~1e9 seconds (30 years; worse than any real clock): widths
  // are small differences of huge numbers; the engine must still match the
  // oracle to relative precision.
  const SystemSpec spec = line_spec(2, 1e-4, 0.001, 0.02);
  SyncEngine engine(spec, 1);
  FullViewCsa oracle;
  oracle.init(spec, 1);
  EventFactory fac(2);
  const double base = 1.0e9;
  const EventRecord s = fac.send(0, 25.0, 1);
  const EventRecord r = fac.receive(1, base, s);
  engine.ingest(s);
  engine.ingest(r);
  oracle.on_receive(RecvContext{1, 0, r, s, 0}, CsaPayload{{s}, {}});
  const Interval fast = engine.estimate(base + 5.0);
  const Interval slow = oracle.estimate(base + 5.0);
  EXPECT_TRUE(intervals_close(fast, slow, 1e-9));
  EXPECT_TRUE(fast.bounded());
  EXPECT_NEAR(fast.width(), (0.02 - 0.001) + 5.0 * 2e-4, 1e-6);
}

TEST(ExtremeTest, VeryHighDriftBound) {
  // rho = 0.5: clock may run at half or 1.5x real speed.  The formulas must
  // stay consistent (no negative-cycle false positives) for in-spec clocks.
  const SystemSpec spec({ClockSpec{0.0}, ClockSpec{0.5}},
                        {LinkSpec{0, 1, 0.0, 0.1}}, 0);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  // Receiver clock runs at 1.4x: local times stretch.
  const EventRecord s1 = fac.send(0, 1.0, 1);
  const EventRecord r1 = fac.receive(1, 100.0, s1);
  const EventRecord s2 = fac.send(0, 2.0, 1);
  const EventRecord r2 = fac.receive(1, 101.4, s2);
  engine.ingest(s1);
  engine.ingest(r1);
  engine.ingest(s2);
  engine.ingest(r2);
  const Interval est = engine.estimate(101.4);
  EXPECT_TRUE(est.contains(2.05));  // true time just after the second send
}

TEST(ExtremeTest, NegativeLocalTimesAreFine) {
  // Local clocks can read arbitrary values, including negative ones.
  const SystemSpec spec = line_spec(2, 1e-4, 0.01, 0.05);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 3.0, 1);
  const EventRecord r = fac.receive(1, -5000.0, s);
  engine.ingest(s);
  engine.ingest(r);
  const Interval est = engine.estimate(-4999.0);
  EXPECT_TRUE(est.bounded());
  EXPECT_GT(est.lo, 3.0);  // just after the send, in source time
}

TEST(ExtremeTest, TwoNodeZeroMinDelayUnboundedMax) {
  // The weakest possible physical link spec: transit in [0, inf).  Only
  // round trips produce bounded estimates.
  const SystemSpec spec = line_spec(2, 1e-3, 0.0, kNoBound);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 10.0, 1);
  const EventRecord r = fac.receive(1, 100.0, s);
  engine.ingest(s);
  engine.ingest(r);
  Interval est = engine.estimate(100.0);
  EXPECT_TRUE(std::isfinite(est.lo));  // source sent at 10, transit >= 0
  EXPECT_EQ(est.hi, kNoBound);         // no upper bound without round trip
  const EventRecord s2 = fac.send(1, 100.5, 0);
  const EventRecord r2 = fac.receive(0, 11.0, s2);
  const EventRecord s3 = fac.send(0, 11.2, 1);
  const EventRecord r3 = fac.receive(1, 101.0, s3);
  engine.ingest(s2);
  engine.ingest(r2);
  engine.ingest(s3);
  engine.ingest(r3);
  est = engine.estimate(101.0);
  EXPECT_TRUE(est.bounded());
}

TEST(ExtremeTest, DenseSimultaneousTrafficInSimulator) {
  // Many zero-delay timers firing at the same instant: FIFO ordering and
  // seq assignment must stay coherent.
  const SystemSpec spec = line_spec(2, 1e-4, 0.0, 0.001);
  sim::SimConfig cfg;
  cfg.seed = 3;
  cfg.record_trace = true;
  sim::Simulator simulator(spec, {sim::LinkRuntime{
                                     sim::LatencyModel::fixed(0.0005), 0.0}},
                           cfg);
  struct BlastApp : sim::App {
    void on_start(sim::NodeApi& api) override {
      if (api.self() == 1) {
        for (int i = 0; i < 50; ++i) api.set_timer(1.0, 1);
      }
    }
    void on_timer(sim::NodeApi& api, std::uint32_t) override {
      api.send(0, 1);
    }
  };
  for (ProcId p = 0; p < 2; ++p) {
    std::vector<std::unique_ptr<Csa>> csas;
    csas.push_back(std::make_unique<OptimalCsa>());
    csas.push_back(std::make_unique<FullViewCsa>());
    simulator.attach_node(p, sim::ClockModel::constant(0.0, 1.0),
                          std::make_unique<BlastApp>(), std::move(csas));
  }
  simulator.run_until(2.0);
  EXPECT_EQ(simulator.messages_sent(), 50u);
  // All 50 sends share one local time; estimates still agree with oracle.
  const Interval fast = simulator.csa(0, 0).estimate(2.0);
  const Interval slow = simulator.csa(0, 1).estimate(2.0);
  EXPECT_TRUE(intervals_close(fast, slow, 1e-9));
}

TEST(ExtremeTest, InternalEventsFlowThroughTheStack) {
  // Apps can mark internal events (points with no message); they must enter
  // every CSA's view, stay consistent with the oracle, and count as events.
  const SystemSpec spec = line_spec(2, 1e-4, 0.001, 0.01);
  sim::SimConfig cfg;
  cfg.seed = 6;
  cfg.record_trace = true;
  sim::Simulator simulator(
      spec, {sim::LinkRuntime{sim::LatencyModel::fixed(0.005), 0.0}}, cfg);
  struct TickerApp : sim::App {
    void on_start(sim::NodeApi& api) override { api.set_timer(0.1, 1); }
    void on_timer(sim::NodeApi& api, std::uint32_t) override {
      api.mark_internal_event();
      if (api.self() == 1 && api.rng().flip(0.5)) api.send(0, 1);
      if (api.self() == 0 && api.rng().flip(0.5)) api.send(1, 1);
      api.set_timer(0.1, 1);
    }
  };
  for (ProcId p = 0; p < 2; ++p) {
    std::vector<std::unique_ptr<Csa>> csas;
    csas.push_back(std::make_unique<OptimalCsa>());
    csas.push_back(std::make_unique<FullViewCsa>());
    simulator.attach_node(p, sim::ClockModel::constant(p * 4.0, 1.0),
                          std::make_unique<TickerApp>(), std::move(csas));
  }
  simulator.run_until(5.0);
  std::size_t internals = 0;
  for (const sim::TraceEntry& te : simulator.trace()) {
    if (te.record.kind == EventKind::kInternal) ++internals;
  }
  EXPECT_GE(internals, 90u);  // ~50 ticks per node
  for (ProcId p = 0; p < 2; ++p) {
    const LocalTime lt = simulator.clock(p).lt_at(5.0);
    EXPECT_TRUE(intervals_close(simulator.csa(p, 0).estimate(lt),
                                simulator.csa(p, 1).estimate(lt), 1e-9));
  }
  // The internal events were propagated to the peer's view too.
  const auto& oracle = dynamic_cast<FullViewCsa&>(simulator.csa(0, 1));
  EXPECT_GT(oracle.view().events_of(1).size(), 40u);
}

TEST(ExtremeTest, LongIdlePeriodKeepsExtrapolating) {
  const SystemSpec spec = line_spec(2, 1e-4, 0.001, 0.01);
  SyncEngine engine(spec, 1);
  EventFactory fac(2);
  const EventRecord s = fac.send(0, 1.0, 1);
  const EventRecord r = fac.receive(1, 2.0, s);
  engine.ingest(s);
  engine.ingest(r);
  const double w0 = engine.estimate(2.0).width();
  // A week of silence: width grows linearly, never overflows or collapses.
  const double week = 7 * 24 * 3600.0;
  const double w1 = engine.estimate(2.0 + week).width();
  EXPECT_NEAR(w1 - w0, week * (1e-4 / (1 - 1e-4) + 1e-4 / (1 + 1e-4)), 1e-3);
}

}  // namespace
}  // namespace driftsync
